#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "linearize/transpose.h"
#include "simd/dispatch.h"
#include "stats/byte_histogram.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/scratch_arena.h"

namespace isobar {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

std::vector<simd::Tier> SupportedTiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse42, simd::Tier::kAvx2}) {
    if (simd::TierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

// Every test that forces the dispatch tier restores the default afterwards
// so later tests (and other test binaries' processes) see the real host
// resolution again.
class SimdTierTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::ResetActiveTierForTesting(); }
};

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatchTest, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(simd::TierSupported(simd::Tier::kScalar));
  // The active tier must be one the host can execute.
  EXPECT_TRUE(simd::TierSupported(simd::ActiveTier()));
}

TEST(SimdDispatchTest, TiersAreOrdered) {
  // A supported tier implies every lower tier is supported too.
  if (simd::TierSupported(simd::Tier::kAvx2)) {
    EXPECT_TRUE(simd::TierSupported(simd::Tier::kSse42));
  }
  if (simd::TierSupported(simd::Tier::kSse42)) {
    EXPECT_TRUE(simd::TierSupported(simd::Tier::kScalar));
  }
}

TEST(SimdDispatchTest, TierNamesRoundTrip) {
  EXPECT_EQ(simd::TierToString(simd::Tier::kScalar), "scalar");
  EXPECT_EQ(simd::TierToString(simd::Tier::kSse42), "sse42");
  EXPECT_EQ(simd::TierToString(simd::Tier::kAvx2), "avx2");
}

TEST_F(SimdTierTest, ForcedTierIsClampedToHostSupport) {
  const simd::Tier got = simd::SetActiveTierForTesting(simd::Tier::kAvx2);
  EXPECT_TRUE(simd::TierSupported(got));
  EXPECT_EQ(got, simd::ActiveTier());
  // Forcing scalar always succeeds exactly.
  EXPECT_EQ(simd::SetActiveTierForTesting(simd::Tier::kScalar),
            simd::Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
}

TEST(SimdDispatchTest, EveryTableEntryIsPopulated) {
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse42, simd::Tier::kAvx2}) {
    const simd::KernelTable& k = simd::KernelsForTier(t);
    EXPECT_NE(k.histogram_update, nullptr);
    EXPECT_NE(k.gather_col_w4, nullptr);
    EXPECT_NE(k.gather_col_w8, nullptr);
    EXPECT_NE(k.scatter_col_w4, nullptr);
    EXPECT_NE(k.scatter_col_w8, nullptr);
    EXPECT_NE(k.run_scan, nullptr);
    EXPECT_NE(k.mtf_encode, nullptr);
  }
}

// ---------------------------------------------------------------------------
// Histogram kernel parity: every tier must produce bit-identical counts to
// the scalar reference, across random widths and sizes (including tails
// shorter than one unrolled iteration and the width-4/8 fast paths).

TEST(SimdHistogramTest, KernelMatchesScalarAcrossWidths) {
  const simd::KernelTable& scalar =
      simd::KernelsForTier(simd::Tier::kScalar);
  Xoshiro256 rng(0x5eed);
  for (simd::Tier tier : SupportedTiers()) {
    const simd::KernelTable& k = simd::KernelsForTier(tier);
    for (size_t width = 1; width <= 64; ++width) {
      const size_t n = 1 + rng.Next() % 3000;
      const Bytes data = RandomBytes(n * width, width * 977 + n);
      std::vector<uint64_t> expect(width * 256, 0);
      std::vector<uint64_t> got(width * 256, 7);  // nonzero: Update adds
      scalar.histogram_update(data.data(), n, width, expect.data());
      for (auto& v : got) v = 0;
      k.histogram_update(data.data(), n, width, got.data());
      ASSERT_EQ(got, expect) << "tier " << simd::TierToString(tier)
                             << " width " << width << " n " << n;
    }
  }
}

TEST(SimdHistogramTest, KernelAccumulatesIntoExistingCounts) {
  // hists is += semantics: pre-existing counts must be preserved.
  const Bytes data = RandomBytes(8 * 100, 42);
  for (simd::Tier tier : SupportedTiers()) {
    std::vector<uint64_t> hists(8 * 256, 3);
    simd::KernelsForTier(tier).histogram_update(data.data(), 100, 8,
                                                hists.data());
    uint64_t total = 0;
    for (uint64_t v : hists) total += v;
    EXPECT_EQ(total, 8u * 256u * 3u + 8u * 100u)
        << "tier " << simd::TierToString(tier);
  }
}

// ---------------------------------------------------------------------------
// Scan kernel parity: run_scan and mtf_encode back the RLE/BWT codec hot
// loops, so every tier must match the scalar reference bit for bit.

TEST(SimdScanTest, RunScanMatchesScalar) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  // Mismatch positions straddling the 16/32-byte vector strides, plus a
  // run covering the whole buffer (the kernel must not read past n).
  const size_t kBreaks[] = {1,  2,  15, 16, 17, 31,  32,
                            33, 63, 64, 65, 130, 256, 1000};
  Bytes data(1024, 0xAB);
  for (simd::Tier tier : SupportedTiers()) {
    const simd::KernelTable& k = simd::KernelsForTier(tier);
    for (size_t brk : kBreaks) {
      std::fill(data.begin(), data.end(), 0xAB);
      if (brk < data.size()) data[brk] = 0xCD;
      for (size_t n : {size_t{1}, brk, brk + 1, brk + 7, data.size()}) {
        if (n == 0 || n > data.size()) continue;
        ASSERT_EQ(k.run_scan(data.data(), n), scalar.run_scan(data.data(), n))
            << "tier " << simd::TierToString(tier) << " break " << brk
            << " n " << n;
      }
    }
  }
}

TEST(SimdScanTest, RunScanOnRandomRuns) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  Xoshiro256 rng(0xAB5C15);
  // Concatenated random-length runs of random bytes, scanned from every
  // run boundary with the RLE codec's cap.
  Bytes data;
  std::vector<size_t> starts;
  while (data.size() < 8192) {
    starts.push_back(data.size());
    data.insert(data.end(), 1 + rng.Next() % 300,
                static_cast<uint8_t>(rng.Next()));
  }
  for (simd::Tier tier : SupportedTiers()) {
    const simd::KernelTable& k = simd::KernelsForTier(tier);
    for (size_t s : starts) {
      const size_t cap = std::min<size_t>(130, data.size() - s);
      ASSERT_EQ(k.run_scan(data.data() + s, cap),
                scalar.run_scan(data.data() + s, cap))
          << "tier " << simd::TierToString(tier) << " start " << s;
    }
  }
}

TEST(SimdScanTest, MtfEncodeMatchesScalar) {
  const simd::KernelTable& scalar = simd::KernelsForTier(simd::Tier::kScalar);
  Xoshiro256 rng(0x4711);
  for (simd::Tier tier : SupportedTiers()) {
    const simd::KernelTable& k = simd::KernelsForTier(tier);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{255},
                     size_t{4096}}) {
      // Two regimes: full-range noise, and BWT-like low-entropy data where
      // the rank-0 fast path dominates.
      for (int mode = 0; mode < 2; ++mode) {
        Bytes expect(n);
        for (auto& b : expect) {
          b = static_cast<uint8_t>(mode == 0 ? rng.Next() : rng.Next() % 4);
        }
        Bytes got = expect;
        std::array<uint8_t, 256> order_expect;
        std::array<uint8_t, 256> order_got;
        std::iota(order_expect.begin(), order_expect.end(), 0);
        order_got = order_expect;
        scalar.mtf_encode(expect.data(), n, order_expect.data());
        k.mtf_encode(got.data(), n, order_got.data());
        ASSERT_EQ(got, expect) << "tier " << simd::TierToString(tier)
                               << " n " << n << " mode " << mode;
        ASSERT_EQ(order_got, order_expect)
            << "tier " << simd::TierToString(tier) << " n " << n;
      }
    }
  }
}

TEST_F(SimdTierTest, ColumnHistogramSetIdenticalAcrossTiers) {
  // Stream the same data through ColumnHistogramSet under every tier,
  // split into uneven Update calls, and require identical histograms.
  const size_t width = 8;
  const size_t elements = 5000;
  const Bytes data = RandomBytes(elements * width, 99);

  std::vector<std::vector<uint64_t>> per_tier;
  for (simd::Tier tier : SupportedTiers()) {
    simd::SetActiveTierForTesting(tier);
    ColumnHistogramSet set(width);
    // Three uneven slices exercise the streaming path.
    const size_t a = 1234 * width;
    const size_t b = 3777 * width;
    ASSERT_TRUE(set.Update(ByteSpan(data.data(), a)).ok());
    ASSERT_TRUE(set.Update(ByteSpan(data.data() + a, b - a)).ok());
    ASSERT_TRUE(
        set.Update(ByteSpan(data.data() + b, data.size() - b)).ok());
    EXPECT_EQ(set.element_count(), elements);
    std::vector<uint64_t> flat;
    for (size_t c = 0; c < width; ++c) {
      const ByteHistogram& h = set.column(c);
      flat.insert(flat.end(), h.begin(), h.end());
    }
    per_tier.push_back(std::move(flat));
  }
  for (size_t i = 1; i < per_tier.size(); ++i) {
    EXPECT_EQ(per_tier[i], per_tier[0]);
  }
}

// ---------------------------------------------------------------------------
// Transpose kernel parity and round trips.

TEST(SimdTransposeTest, GatherScatterKernelsMatchScalar) {
  const simd::KernelTable& scalar =
      simd::KernelsForTier(simd::Tier::kScalar);
  // Sizes straddle every vector-width boundary plus ragged tails.
  const size_t sizes[] = {0,  1,  2,  3,   4,   5,   7,    8,    15,  16, 17,
                          31, 32, 33, 63,  64,  65,  127,  128,  129, 255,
                          256, 1000, 4097};
  for (simd::Tier tier : SupportedTiers()) {
    const simd::KernelTable& k = simd::KernelsForTier(tier);
    for (size_t n : sizes) {
      for (size_t width : {size_t{4}, size_t{8}}) {
        const Bytes in = RandomBytes(n * width, n * 13 + width);
        Bytes expect(n * width, 0xEE), got(n * width, 0x11);
        auto gather = width == 4 ? scalar.gather_col_w4 : scalar.gather_col_w8;
        auto gather_t = width == 4 ? k.gather_col_w4 : k.gather_col_w8;
        gather(in.data(), n, expect.data());
        gather_t(in.data(), n, got.data());
        ASSERT_EQ(got, expect)
            << "gather tier " << simd::TierToString(tier) << " w" << width
            << " n " << n;

        // Scatter parity on the gathered (column-major) layout, and the
        // round trip must reproduce the original element-major bytes.
        Bytes back(n * width, 0x22);
        auto scatter_t = width == 4 ? k.scatter_col_w4 : k.scatter_col_w8;
        scatter_t(got.data(), n, back.data());
        ASSERT_EQ(back, in) << "round trip tier " << simd::TierToString(tier)
                            << " w" << width << " n " << n;
      }
    }
  }
}

// Property test over the public API: random widths 1..64, random masks,
// both linearizations — every tier must produce byte-identical gather
// output and a lossless gather -> scatter round trip.
TEST_F(SimdTierTest, GatherColumnsParityAcrossTiersRandomized) {
  Xoshiro256 rng(0xBEEF);
  const std::vector<simd::Tier> tiers = SupportedTiers();
  for (int iter = 0; iter < 60; ++iter) {
    const size_t width = 1 + rng.Next() % 64;
    const size_t n = 1 + rng.Next() % 600;
    const uint64_t full = width >= 64 ? ~0ull : ((1ull << width) - 1);
    // Mix of random masks and the full mask (the kernel-accelerated case).
    const uint64_t mask = iter % 4 == 0 ? full : (rng.Next() & full);
    if (mask == 0) continue;
    const Linearization lin =
        iter % 2 == 0 ? Linearization::kColumn : Linearization::kRow;
    const Bytes data = RandomBytes(n * width, rng.Next());

    Bytes reference;
    for (size_t t = 0; t < tiers.size(); ++t) {
      simd::SetActiveTierForTesting(tiers[t]);
      Bytes packed;
      ASSERT_TRUE(GatherColumns(data, width, mask, lin, &packed).ok());
      if (t == 0) {
        reference = packed;
      } else {
        ASSERT_EQ(packed, reference)
            << "tier " << simd::TierToString(tiers[t]) << " width " << width
            << " n " << n << " mask " << std::hex << mask;
      }

      Bytes dest(data.size(), 0);
      ASSERT_TRUE(
          ScatterColumns(packed, width, mask, lin, MutableByteSpan(dest))
              .ok());
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < width; ++j) {
          const uint8_t expected =
              (mask & (1ull << j)) ? data[i * width + j] : 0;
          ASSERT_EQ(dest[i * width + j], expected)
              << "tier " << simd::TierToString(tiers[t]) << " elem " << i
              << " col " << j;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the container must be byte-identical no matter which kernel
// tier encoded it (and no matter the thread count — chunks are assembled
// in order).

TEST_F(SimdTierTest, ContainerBytesIdenticalAcrossTiersAndThreads) {
  auto spec = FindDatasetSpec("gts_phi_l");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 120000);
  ASSERT_TRUE(dataset.ok());

  Bytes reference;
  bool have_reference = false;
  for (simd::Tier tier : SupportedTiers()) {
    simd::SetActiveTierForTesting(tier);
    for (uint32_t threads : {1u, 4u}) {
      CompressOptions options;
      options.chunk_elements = 40000;  // several chunks
      options.num_threads = threads;
      options.eupa.sample_elements = 4096;
      // kSpeed selects within a wall-clock throughput band, so the codec /
      // linearization pick (and hence the container bytes) can flip under
      // machine load. kRatio is bit-deterministic, which is what this test
      // is actually about: identical bytes from identical inputs across
      // tiers and thread counts.
      options.eupa.preference = Preference::kRatio;
      IsobarCompressor compressor(options);
      auto container = compressor.Compress(dataset->bytes(), dataset->width());
      ASSERT_TRUE(container.ok())
          << "tier " << simd::TierToString(tier) << " threads " << threads;
      if (!have_reference) {
        reference = *container;
        have_reference = true;
      } else {
        ASSERT_EQ(*container, reference)
            << "tier " << simd::TierToString(tier) << " threads " << threads;
      }
      // And the container decodes back to the input regardless of the
      // tier doing the decoding.
      auto round = IsobarCompressor::Decompress(*container);
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(*round, dataset->data);
    }
  }
}

// ---------------------------------------------------------------------------
// ScratchArena.

TEST(ScratchArenaTest, BuffersPersistAndTrimReleases) {
  ScratchArena arena;
  EXPECT_EQ(arena.TotalCapacityBytes(), 0u);
  arena.buffer(ScratchArena::kGathered).resize(1 << 16);
  arena.buffer(ScratchArena::kRaw).resize(1 << 10);
  EXPECT_GE(arena.TotalCapacityBytes(), (1u << 16) + (1u << 10));

  // Shrinking the size keeps the capacity (that is the point: steady-state
  // chunks stop allocating).
  arena.buffer(ScratchArena::kGathered).clear();
  EXPECT_GE(arena.TotalCapacityBytes(), 1u << 16);

  arena.Trim();
  EXPECT_EQ(arena.TotalCapacityBytes(), 0u);
}

TEST(ScratchArenaTest, ThreadLocalIsPerThread) {
  ScratchArena* main_arena = &ScratchArena::ThreadLocal();
  EXPECT_EQ(main_arena, &ScratchArena::ThreadLocal());  // stable per thread
  ScratchArena* worker_arena = nullptr;
  std::thread t([&] { worker_arena = &ScratchArena::ThreadLocal(); });
  t.join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
}

// ---------------------------------------------------------------------------
// BWT worst case. The previous comparator-based suffix sort degraded to
// quadratic-or-worse behaviour on highly repetitive input; a 1 MiB
// constant block took minutes. The prefix-doubling sort finishes this in
// well under a second (see BM_BwtCompressRepetitive), so the test merely
// completing inside the suite's normal budget is the regression check.

TEST(SimdBwtTest, RepetitiveMegabyteChunkRoundTrips) {
  auto codec = GetCodec(CodecId::kBwt);
  ASSERT_TRUE(codec.ok());

  // All-equal bytes: every rotation ties on every round.
  const Bytes constant(1 << 20, 0xAB);
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(constant, &compressed).ok());
  Bytes restored;
  ASSERT_TRUE(
      (*codec)->Decompress(compressed, constant.size(), &restored).ok());
  EXPECT_EQ(restored, constant);

  // Short period: ranks collapse into p classes and stay there.
  Bytes periodic(1 << 20);
  for (size_t i = 0; i < periodic.size(); ++i) {
    periodic[i] = static_cast<uint8_t>("abcabd"[i % 6]);
  }
  compressed.clear();
  ASSERT_TRUE((*codec)->Compress(periodic, &compressed).ok());
  ASSERT_TRUE(
      (*codec)->Decompress(compressed, periodic.size(), &restored).ok());
  EXPECT_EQ(restored, periodic);
}

// ---------------------------------------------------------------------------
// CRC32C: the 3-way interleaved hardware path must agree with the
// table-driven portable implementation on every size around the 3x4096-byte
// interleave threshold, at unaligned offsets, and under incremental use.

TEST(SimdCrc32cTest, HardwareMatchesPortable) {
  const Bytes data = RandomBytes(64 * 1024 + 19, 0xC4C);
  const size_t sizes[] = {0,     1,     7,     8,     9,     4095,  4096,
                          4097,  8192,  12287, 12288, 12289, 12296, 16384,
                          24576, 36864, 65536};
  for (size_t n : sizes) {
    ASSERT_LE(n, data.size());
    EXPECT_EQ(crc32c::Extend(0, data.data(), n),
              crc32c::internal::ExtendPortable(0, data.data(), n))
        << "n " << n;
    // Unaligned start, nonzero seed.
    const size_t m = n < 13 ? n : n - 13;
    EXPECT_EQ(crc32c::Extend(0xDEADBEEF, data.data() + 13, m),
              crc32c::internal::ExtendPortable(0xDEADBEEF, data.data() + 13,
                                               m))
        << "n " << n;
  }
}

TEST(SimdCrc32cTest, IncrementalSplitsCrossInterleaveThreshold) {
  const Bytes data = RandomBytes(50000, 7);
  const uint32_t whole = crc32c::Extend(0, data.data(), data.size());
  for (size_t split : {1u, 4096u, 12288u, 12289u, 30000u, 49999u}) {
    uint32_t crc = crc32c::Extend(0, data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split " << split;
  }
}

TEST(SimdCrc32cTest, PortableMatchesKnownVectors) {
  const char* digits = "123456789";
  EXPECT_EQ(crc32c::internal::ExtendPortable(
                0, reinterpret_cast<const uint8_t*>(digits), 9),
            0xE3069283u);
  const uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c::internal::ExtendPortable(0, zeros, 32), 0x8A9136AAu);
}

}  // namespace
}  // namespace isobar
