// The contract of the parallel chunk pipeline: for every thread count the
// emitted container is byte-identical to the serial path's, decompression
// reconstructs the original, and the telemetry trace layer still accounts
// for every container byte when chunks are encoded concurrently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "core/isobar.h"
#include "core/stream.h"
#include "datagen/registry.h"
#include "io/sink.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_export.h"

namespace isobar {
namespace {

Result<Dataset> Generate(const char* name, uint64_t elements) {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec, FindDatasetSpec(name));
  return GenerateDataset(*spec, elements);
}

CompressOptions MultiChunkOptions(uint32_t num_threads) {
  CompressOptions options;
  options.chunk_elements = 50000;  // 8 chunks on a 400k-element dataset
  options.num_threads = num_threads;
  // Pin the pipeline decision: EUPA picks by *measured* candidate
  // throughput, which can flip between runs on a loaded machine. Byte
  // identity across thread counts is a per-decision guarantee, so these
  // tests must compare containers built from the same decision.
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kColumn;
  return options;
}

TEST(ParallelPipelineTest, CompressIsByteIdenticalAcrossThreadCounts) {
  auto dataset = Generate("flash_velx", 400000);
  ASSERT_TRUE(dataset.ok());

  const IsobarCompressor serial(MultiChunkOptions(1));
  auto baseline = serial.Compress(dataset->bytes(), 8);
  ASSERT_TRUE(baseline.ok());

  for (uint32_t threads : {2u, 8u}) {
    const IsobarCompressor parallel(MultiChunkOptions(threads));
    auto container = parallel.Compress(dataset->bytes(), 8);
    ASSERT_TRUE(container.ok());
    EXPECT_EQ(*container, *baseline) << "threads=" << threads;
  }
}

TEST(ParallelPipelineTest, ParallelStatsMatchSerialStats) {
  auto dataset = Generate("gts_phi_l", 400000);
  ASSERT_TRUE(dataset.ok());

  CompressionStats serial_stats;
  const IsobarCompressor serial(MultiChunkOptions(1));
  ASSERT_TRUE(serial.Compress(dataset->bytes(), 8, &serial_stats).ok());

  CompressionStats parallel_stats;
  const IsobarCompressor parallel(MultiChunkOptions(8));
  ASSERT_TRUE(parallel.Compress(dataset->bytes(), 8, &parallel_stats).ok());

  // Deterministic fields agree exactly: chunk stats merge in chunk order
  // with the serial path's arithmetic (timings, of course, differ).
  EXPECT_EQ(parallel_stats.chunk_count, serial_stats.chunk_count);
  EXPECT_EQ(parallel_stats.improvable_chunks, serial_stats.improvable_chunks);
  EXPECT_EQ(parallel_stats.improvable, serial_stats.improvable);
  EXPECT_DOUBLE_EQ(parallel_stats.mean_htc_fraction,
                   serial_stats.mean_htc_fraction);
  EXPECT_EQ(parallel_stats.output_bytes, serial_stats.output_bytes);
}

TEST(ParallelPipelineTest, ParallelDecompressReconstructsOriginal) {
  auto dataset = Generate("flash_velx", 400000);
  ASSERT_TRUE(dataset.ok());
  const IsobarCompressor compressor(MultiChunkOptions(2));
  auto container = compressor.Compress(dataset->bytes(), 8);
  ASSERT_TRUE(container.ok());

  for (uint32_t threads : {1u, 2u, 8u}) {
    DecompressOptions options;
    options.num_threads = threads;
    DecompressionStats stats;
    auto restored = IsobarCompressor::Decompress(*container, options, &stats);
    ASSERT_TRUE(restored.ok()) << "threads=" << threads;
    EXPECT_EQ(*restored, dataset->data) << "threads=" << threads;
    EXPECT_EQ(stats.chunk_count, 8u);
    EXPECT_EQ(stats.output_bytes, dataset->data.size());
  }
}

TEST(ParallelPipelineTest, ParallelDecompressRejectsCorruptPayload) {
  auto dataset = Generate("flash_velx", 200000);
  ASSERT_TRUE(dataset.ok());
  const IsobarCompressor compressor(MultiChunkOptions(2));
  auto container = compressor.Compress(dataset->bytes(), 8);
  ASSERT_TRUE(container.ok());

  // Flip a byte deep in the payload: the parallel path must surface the
  // chunk's checksum failure, not silently return damaged plaintext.
  Bytes corrupt = *container;
  corrupt[corrupt.size() - 20] ^= 0xFF;
  DecompressOptions options;
  options.num_threads = 4;
  auto restored = IsobarCompressor::Decompress(corrupt, options);
  EXPECT_FALSE(restored.ok());
}

TEST(ParallelPipelineTest, StreamWriterIsByteIdenticalAcrossThreadCounts) {
  auto dataset = Generate("flash_velx", 400000);
  ASSERT_TRUE(dataset.ok());

  auto stream_container = [&](uint32_t threads) {
    Bytes buffer;
    MemorySink sink(&buffer);
    IsobarStreamWriter writer(MultiChunkOptions(threads), 8, &sink);
    // Uneven appends so chunk boundaries never align with write sizes.
    ByteSpan data = dataset->bytes();
    size_t offset = 0;
    const size_t step = 123457;
    while (offset < data.size()) {
      const size_t take = std::min(step, data.size() - offset);
      EXPECT_TRUE(writer.Append(data.subspan(offset, take)).ok());
      offset += take;
    }
    EXPECT_TRUE(writer.Finish().ok());
    return buffer;
  };

  const Bytes baseline = stream_container(1);
  for (uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(stream_container(threads), baseline) << "threads=" << threads;
  }

  // Streamed containers stay readable by the batch decompressor.
  auto restored = IsobarCompressor::Decompress(baseline);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dataset->data);
}

// ---------------------------------------------------------------------------
// Telemetry under concurrency: traces recorded on worker threads must be
// stitched back in chunk order with nothing lost.

class ParallelTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    telemetry::SetEnabled(true);
    telemetry::TraceRecorder::Global().SetEnabled(true);
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::TraceRecorder::Global().Clear();
  }

  void TearDown() override {
    if (!telemetry::kCompiledIn) return;
    telemetry::SetEnabled(false);
    telemetry::TraceRecorder::Global().SetEnabled(false);
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::TraceRecorder::Global().Clear();
  }
};

TEST_F(ParallelTelemetryTest, ChunkTracesReconstructContainerUnderConcurrency) {
  auto dataset = Generate("flash_velx", 400000);
  ASSERT_TRUE(dataset.ok());
  const IsobarCompressor compressor(MultiChunkOptions(8));
  auto container = compressor.Compress(dataset->bytes(), 8);
  ASSERT_TRUE(container.ok());

  const auto pipelines = telemetry::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(pipelines.size(), 1u);
  const telemetry::PipelineTrace& trace = pipelines[0];
  ASSERT_TRUE(trace.finished);
  ASSERT_EQ(trace.chunks.size(), 8u);
  EXPECT_EQ(trace.dropped_chunks, 0u);

  // Stitched in chunk order: indices are consecutive and the element
  // stream matches the chunker's layout (equal chunks on this dataset).
  uint64_t input_total = 0;
  uint64_t output_total = 0;
  for (size_t i = 0; i < trace.chunks.size(); ++i) {
    EXPECT_EQ(trace.chunks[i].chunk_index, i);
    EXPECT_EQ(trace.chunks[i].element_count, 50000u);
    input_total += trace.chunks[i].input_bytes;
    output_total += trace.chunks[i].output_bytes;
  }
  // Every container byte is accounted for: header + per-chunk records +
  // the v2 chunk-index footer.
  EXPECT_EQ(input_total, dataset->data.size());
  EXPECT_EQ(trace.header_bytes + output_total + container::FooterBytes(8),
            container->size());
  EXPECT_EQ(trace.output_bytes, container->size());
}

TEST_F(ParallelTelemetryTest, StreamWriterTracesStitchedInChunkOrder) {
  auto dataset = Generate("flash_velx", 400000);
  ASSERT_TRUE(dataset.ok());
  Bytes buffer;
  MemorySink sink(&buffer);
  IsobarStreamWriter writer(MultiChunkOptions(4), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset->bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());

  const auto pipelines = telemetry::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(pipelines.size(), 1u);
  const telemetry::PipelineTrace& trace = pipelines[0];
  ASSERT_TRUE(trace.finished);
  ASSERT_EQ(trace.chunks.size(), 8u);
  uint64_t output_total = 0;
  for (size_t i = 0; i < trace.chunks.size(); ++i) {
    EXPECT_EQ(trace.chunks[i].chunk_index, i);
    output_total += trace.chunks[i].output_bytes;
  }
  EXPECT_EQ(trace.header_bytes + output_total + container::FooterBytes(8),
            buffer.size());
}

}  // namespace
}  // namespace isobar
