#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "io/fault_injection.h"
#include "io/sink.h"
#include "util/bytes.h"

namespace isobar::server {
namespace {

Bytes SomePayload(size_t n) {
  Bytes payload(n);
  for (size_t i = 0; i < n; ++i) payload[i] = static_cast<uint8_t>(i * 7 + 3);
  return payload;
}

std::vector<Frame> MustParse(FrameParser* parser, ByteSpan data) {
  std::vector<Frame> frames;
  const Status st = parser->Feed(data, &frames);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return frames;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const Bytes payload = SomePayload(1000);
  const Bytes wire = EncodeRequest(Op::kCompress, 77, 0x01020304, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  FrameParser parser(kRequestMagic);
  const std::vector<Frame> frames = MustParse(&parser, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.magic, kRequestMagic);
  EXPECT_EQ(frames[0].header.version, kProtocolVersion);
  EXPECT_EQ(frames[0].header.op, static_cast<uint8_t>(Op::kCompress));
  EXPECT_EQ(frames[0].header.request_id, 77u);
  EXPECT_EQ(frames[0].header.aux, 0x01020304u);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(ProtocolTest, ResponseRoundTripEmptyPayload) {
  const Bytes wire = EncodeResponse(ResponseStatus::kBusy, 12,
                                    static_cast<uint64_t>(1), {});
  FrameParser parser(kResponseMagic);
  const std::vector<Frame> frames = MustParse(&parser, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.op, static_cast<uint8_t>(ResponseStatus::kBusy));
  EXPECT_EQ(frames[0].header.aux, 1u);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(ProtocolTest, PipelinedFramesInOneBuffer) {
  Bytes wire;
  AppendRequestFrame(Op::kPing, 1, 0, SomePayload(10), &wire);
  AppendRequestFrame(Op::kStats, 2, 0, {}, &wire);
  AppendRequestFrame(Op::kDecompress, 3, 0, SomePayload(100), &wire);

  FrameParser parser(kRequestMagic);
  const std::vector<Frame> frames = MustParse(&parser, wire);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].header.request_id, 1u);
  EXPECT_EQ(frames[1].header.request_id, 2u);
  EXPECT_EQ(frames[2].header.request_id, 3u);
  EXPECT_EQ(frames[2].payload.size(), 100u);
}

TEST(ProtocolTest, ByteAtATimeDelivery) {
  const Bytes payload = SomePayload(37);
  const Bytes wire = EncodeRequest(Op::kCompress, 9, 8, payload);

  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(parser.Feed(ByteSpan(&wire[i], 1), &frames).ok());
    if (i + 1 < wire.size()) {
      EXPECT_TRUE(frames.empty());
      EXPECT_EQ(parser.buffered_bytes(), i + 1);
    }
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

// A torn write — the sender dies mid-frame — must leave the parser
// waiting for more bytes, never produce a partial frame. Use the
// FaultInjectionSink to tear the stream exactly as the IO layer would.
TEST(ProtocolTest, TornWriteLeavesFrameIncomplete) {
  const Bytes wire = EncodeRequest(Op::kCompress, 5, 8, SomePayload(64));

  for (const size_t tear_at : {1u, 16u, 31u, 32u, 33u, 64u}) {
    Bytes delivered;
    MemorySink memory(&delivered);
    FaultInjectionSink faulty(tear_at, &memory);
    EXPECT_FALSE(faulty.Write(wire).ok());
    EXPECT_TRUE(faulty.tripped());
    ASSERT_EQ(delivered.size(), tear_at);

    FrameParser parser(kRequestMagic);
    std::vector<Frame> frames;
    ASSERT_TRUE(parser.Feed(delivered, &frames).ok())
        << "tear at " << tear_at;
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(parser.buffered_bytes(), tear_at);
    EXPECT_FALSE(parser.poisoned());

    // The retransmitted remainder completes the frame.
    ASSERT_TRUE(
        parser
            .Feed(ByteSpan(wire.data() + tear_at, wire.size() - tear_at),
                  &frames)
            .ok());
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].header.request_id, 5u);
  }
}

TEST(ProtocolTest, TruncatedHeaderNeverYieldsAFrame) {
  const Bytes wire = EncodeRequest(Op::kPing, 1, 0, {});
  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  ASSERT_TRUE(
      parser.Feed(ByteSpan(wire.data(), kFrameHeaderSize - 1), &frames).ok());
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(parser.buffered_bytes(), kFrameHeaderSize - 1);
}

TEST(ProtocolTest, BadMagicPoisons) {
  Bytes wire = EncodeRequest(Op::kPing, 1, 0, {});
  wire[0] ^= 0xFF;
  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
  EXPECT_TRUE(parser.poisoned());
  EXPECT_TRUE(frames.empty());
  // Sticky: even a pristine frame fails after poisoning.
  const Bytes good = EncodeRequest(Op::kPing, 2, 0, {});
  EXPECT_FALSE(parser.Feed(good, &frames).ok());
  EXPECT_TRUE(frames.empty());
}

TEST(ProtocolTest, UnknownVersionPoisons) {
  Bytes wire = EncodeRequest(Op::kPing, 1, 0, {});
  wire[4] = kProtocolVersion + 1;
  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
  EXPECT_TRUE(parser.poisoned());
}

TEST(ProtocolTest, NonzeroReservedPoisons) {
  Bytes wire = EncodeRequest(Op::kPing, 1, 0, {});
  wire[6] = 0x01;
  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
  EXPECT_TRUE(parser.poisoned());
}

// An oversized length prefix must poison at header-parse time — before
// any attempt to buffer the declared payload, or a hostile 2^60-byte
// claim would OOM the server.
TEST(ProtocolTest, OversizedLengthPrefixPoisonsWithoutBuffering) {
  Bytes wire = EncodeRequest(Op::kCompress, 1, 8, {});
  const uint64_t huge = 1ull << 60;
  std::memcpy(wire.data() + 24, &huge, sizeof(huge));

  FrameParser parser(kRequestMagic, /*max_payload=*/1 << 20);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
  EXPECT_TRUE(parser.poisoned());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(ProtocolTest, PayloadExactlyAtLimitIsAccepted) {
  const Bytes payload = SomePayload(1024);
  const Bytes wire = EncodeRequest(Op::kCompress, 1, 8, payload);
  FrameParser parser(kRequestMagic, /*max_payload=*/1024);
  const std::vector<Frame> frames = MustParse(&parser, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), 1024u);
}

// The parser hands over frames completed before the violation: the server
// answers what it can still trust, then drops the connection.
TEST(ProtocolTest, FramesBeforeViolationAreDelivered) {
  Bytes wire;
  AppendRequestFrame(Op::kPing, 1, 0, SomePayload(8), &wire);
  Bytes bad = EncodeRequest(Op::kPing, 2, 0, {});
  bad[0] ^= 0xFF;
  wire.insert(wire.end(), bad.begin(), bad.end());

  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.request_id, 1u);
  EXPECT_TRUE(parser.poisoned());
}

TEST(ProtocolTest, WrongDirectionMagicIsRejected) {
  // A response frame fed to a request parser is a framing violation, not
  // a silently-misread frame.
  const Bytes wire = EncodeResponse(ResponseStatus::kOk, 1, 0, {});
  FrameParser parser(kRequestMagic);
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed(wire, &frames).ok());
}

TEST(ProtocolTest, CompressAuxRoundTrip) {
  CompressAux aux;
  aux.width = 8;
  aux.codec = CodecId::kZlib;
  aux.linearization = Linearization::kColumn;
  aux.preference = Preference::kSpeed;
  const uint64_t packed = PackCompressAux(aux);
  auto unpacked = UnpackCompressAux(packed);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(unpacked->width, 8u);
  ASSERT_TRUE(unpacked->codec.has_value());
  EXPECT_EQ(*unpacked->codec, CodecId::kZlib);
  ASSERT_TRUE(unpacked->linearization.has_value());
  EXPECT_EQ(*unpacked->linearization, Linearization::kColumn);
  EXPECT_EQ(unpacked->preference, Preference::kSpeed);
}

TEST(ProtocolTest, CompressAuxAutoSelectorsRoundTrip) {
  CompressAux aux;
  aux.width = 4;
  aux.preference = Preference::kRatio;
  const uint64_t packed = PackCompressAux(aux);
  auto unpacked = UnpackCompressAux(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(unpacked->width, 4u);
  EXPECT_FALSE(unpacked->codec.has_value());
  EXPECT_FALSE(unpacked->linearization.has_value());
  EXPECT_EQ(unpacked->preference, Preference::kRatio);
}

TEST(ProtocolTest, CompressAuxRejectsBadFields) {
  EXPECT_FALSE(UnpackCompressAux(0).ok());  // width 0
  CompressAux wide;
  wide.width = 65;
  EXPECT_FALSE(UnpackCompressAux(PackCompressAux(wide)).ok());

  // Width 8, both selectors auto (0xFF) — the valid baseline each case
  // below corrupts in exactly one byte.
  const uint64_t base = 8ull | (0xFFull << 8) | (0xFFull << 16);
  ASSERT_TRUE(UnpackCompressAux(base).ok());
  EXPECT_FALSE(
      UnpackCompressAux(8ull | (0x7Bull << 8) | (0xFFull << 16)).ok());
  EXPECT_FALSE(
      UnpackCompressAux(8ull | (0xFFull << 8) | (0x7Bull << 16)).ok());
  EXPECT_FALSE(UnpackCompressAux(base | (0x02ull << 24)).ok());  // preference
  EXPECT_FALSE(UnpackCompressAux(base | (1ull << 32)).ok());     // padding
}

}  // namespace
}  // namespace isobar::server
