#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fpzip/fpzip_codec.h"
#include "fpzip/lorenzo.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes Grid2D(uint32_t ny, uint32_t nx, double noise_amp, uint64_t seed) {
  Bytes out;
  Xoshiro256 rng(seed);
  for (uint32_t y = 0; y < ny; ++y) {
    for (uint32_t x = 0; x < nx; ++x) {
      const double v = std::sin(0.05 * x) * std::cos(0.04 * y) +
                       noise_amp * rng.NextDouble();
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      AppendLE64(out, bits);
    }
  }
  return out;
}

Bytes RandomWords(size_t n, uint64_t seed) {
  Bytes out;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) AppendLE64(out, rng.Next());
  return out;
}

// ---------------------------------------------------------------------------
// Ordered-integer mapping.

TEST(OrderedMapTest, RoundTrips64) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t bits = rng.Next();
    EXPECT_EQ(FloatBitsFromOrdered64(OrderedFromFloatBits64(bits)), bits);
  }
}

TEST(OrderedMapTest, RoundTrips32) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t bits = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(FloatBitsFromOrdered32(OrderedFromFloatBits32(bits)), bits);
  }
}

TEST(OrderedMapTest, PreservesNumericOrder) {
  // For any two finite doubles a < b the mapped integers must satisfy
  // map(a) < map(b) — the property the Lorenzo residuals rely on.
  const double values[] = {-1e300, -3.5, -1.0, -1e-12, 0.0,
                           5e-13,  1.0,  2.5,  1e300};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    uint64_t ba, bb;
    std::memcpy(&ba, &values[i], 8);
    std::memcpy(&bb, &values[i + 1], 8);
    EXPECT_LT(OrderedFromFloatBits64(ba), OrderedFromFloatBits64(bb))
        << values[i] << " vs " << values[i + 1];
  }
}

// ---------------------------------------------------------------------------
// Lorenzo predictor.

TEST(LorenzoTest, OneDimensionalIsPreviousValue) {
  const uint32_t dims[] = {10};
  LorenzoPredictor predictor(dims);
  std::vector<uint64_t> values = {5, 9, 14, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(predictor.Predict(values, 0), 0u);  // no neighbour yet
  EXPECT_EQ(predictor.Predict(values, 1), 5u);
  EXPECT_EQ(predictor.Predict(values, 3), 14u);
}

TEST(LorenzoTest, TwoDimensionalParallelogramRule) {
  // pred(i,j) = v(i-1,j) + v(i,j-1) - v(i-1,j-1); exact for any bilinear
  // field, so a linear ramp is predicted with zero error.
  const uint32_t dims[] = {4, 4};
  LorenzoPredictor predictor(dims);
  std::vector<uint64_t> values(16);
  for (uint64_t y = 0; y < 4; ++y) {
    for (uint64_t x = 0; x < 4; ++x) {
      values[y * 4 + x] = 100 + 7 * y + 3 * x;
    }
  }
  for (uint64_t y = 1; y < 4; ++y) {
    for (uint64_t x = 1; x < 4; ++x) {
      EXPECT_EQ(predictor.Predict(values, y * 4 + x), values[y * 4 + x]);
    }
  }
}

TEST(LorenzoTest, ThreeDimensionalExactOnTrilinearRamp) {
  const uint32_t dims[] = {3, 3, 3};
  LorenzoPredictor predictor(dims);
  std::vector<uint64_t> values(27);
  for (uint64_t z = 0; z < 3; ++z)
    for (uint64_t y = 0; y < 3; ++y)
      for (uint64_t x = 0; x < 3; ++x)
        values[(z * 3 + y) * 3 + x] = 1000 + 11 * z + 5 * y + 2 * x;
  for (uint64_t z = 1; z < 3; ++z)
    for (uint64_t y = 1; y < 3; ++y)
      for (uint64_t x = 1; x < 3; ++x) {
        const uint64_t idx = (z * 3 + y) * 3 + x;
        EXPECT_EQ(predictor.Predict(values, idx), values[idx]);
      }
}

// ---------------------------------------------------------------------------
// Codec round trips.

TEST(FpzipCodecTest, OneDDoublesRoundTrip) {
  const FpzipCodec codec(8);
  const Bytes input = RandomWords(4001, 3);
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(FpzipCodecTest, TwoDGridRoundTrip) {
  const FpzipCodec codec(8, {64, 32});
  const Bytes input = Grid2D(64, 32, 0.1, 5);
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(FpzipCodecTest, ThreeDGridRoundTrip) {
  const FpzipCodec codec(8, {8, 16, 8});
  Bytes input;
  Xoshiro256 rng(6);
  for (int i = 0; i < 8 * 16 * 8; ++i) AppendLE64(input, rng.Next());
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(FpzipCodecTest, FloatElementsRoundTrip) {
  const FpzipCodec codec(4);
  Bytes input;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const float v = static_cast<float>(std::sin(i * 0.01) + 0.01 * rng.NextDouble());
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    AppendLE32(input, bits);
  }
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(FpzipCodecTest, EmptyInputRoundTrips) {
  const FpzipCodec codec(8);
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress({}, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, 0, &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(FpzipCodecTest, SmoothFieldCompresses) {
  const FpzipCodec codec(8, {128, 128});
  const Bytes smooth = Grid2D(128, 128, 0.0, 8);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(smooth, &compressed).ok());
  // The byte-granular residual coder keeps ~5-6 of 8 bytes per value on a
  // transcendental field (the original's arithmetic coder does better; see
  // the documented simplification in the class comment).
  EXPECT_LT(compressed.size(), smooth.size() * 7 / 8);
}

TEST(FpzipCodecTest, TwoDPredictionBeatsOneD) {
  // A separable smooth field is better predicted with the 2-D Lorenzo
  // stencil than by the previous element alone.
  const Bytes field = Grid2D(128, 128, 0.0, 9);
  Bytes c1, c2;
  ASSERT_TRUE(FpzipCodec(8).Compress(field, &c1).ok());
  ASSERT_TRUE(FpzipCodec(8, {128, 128}).Compress(field, &c2).ok());
  EXPECT_LT(c2.size(), c1.size());
}

TEST(FpzipCodecTest, ShapeMismatchRejected) {
  const FpzipCodec codec(8, {10, 10});
  const Bytes input = RandomWords(99, 4);
  Bytes out;
  EXPECT_EQ(codec.Compress(input, &out).code(), StatusCode::kInvalidArgument);
}

TEST(FpzipCodecTest, InvalidWidthRejected) {
  const FpzipCodec codec(2);
  Bytes out;
  EXPECT_EQ(codec.Compress(Bytes(16, 0), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(FpzipCodecTest, TruncatedStreamIsCorruption) {
  const FpzipCodec codec(8);
  const Bytes input = RandomWords(500, 11);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes truncated(compressed.begin(), compressed.end() - 2);
  Bytes out;
  EXPECT_EQ(codec.Decompress(truncated, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(FpzipCodecTest, CorruptHeaderIsCorruption) {
  const FpzipCodec codec(8);
  Bytes out;
  EXPECT_EQ(codec.Decompress(Bytes{9, 1, 0, 0}, 8, &out).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(codec.Decompress(Bytes{8, 5, 0, 0}, 8, &out).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(codec.Decompress(Bytes{8}, 8, &out).code(),
            StatusCode::kCorruption);
}

TEST(FpzipCodecTest, StreamIsSelfDescribing) {
  // A decoder constructed with different parameters still decodes: shape
  // and width travel in the stream.
  const Bytes input = Grid2D(32, 16, 0.05, 12);
  Bytes compressed;
  ASSERT_TRUE(FpzipCodec(8, {32, 16}).Compress(input, &compressed).ok());
  Bytes output;
  ASSERT_TRUE(FpzipCodec(4, {7}).Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

}  // namespace
}  // namespace isobar
