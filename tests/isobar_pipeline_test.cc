#include <gtest/gtest.h>

#include <cstdlib>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_export.h"
#include "util/random.h"

namespace isobar {
namespace {

Result<Dataset> Generate(const char* name, uint64_t elements) {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec, FindDatasetSpec(name));
  return GenerateDataset(*spec, elements);
}

TEST(IsobarPipelineTest, StatsReflectImprovableDataset) {
  auto dataset = Generate("flash_velx", 300000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 100000;
  // Serial pipeline: the total >= codec_seconds bound below assumes the
  // per-stage sums are wall-clock, not aggregate worker time.
  options.num_threads = 1;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  EXPECT_TRUE(stats.improvable);
  EXPECT_EQ(stats.chunk_count, 3u);
  EXPECT_EQ(stats.improvable_chunks, 3u);
  EXPECT_NEAR(stats.mean_htc_fraction, 0.75, 1e-9);
  EXPECT_GT(stats.ratio(), 1.2);  // 6 of 8 bytes stored raw, rest shrinks
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.total_seconds,
            stats.codec_seconds);  // components within the total
}

TEST(IsobarPipelineTest, StatsReflectNonImprovableDataset) {
  auto dataset = Generate("msg_sppm", 300000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 100000;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  EXPECT_FALSE(stats.improvable);
  EXPECT_EQ(stats.improvable_chunks, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_htc_fraction, 0.0);
  EXPECT_GT(stats.ratio(), 2.0);  // repetitive data still compresses fine
}

TEST(IsobarPipelineTest, ImprovableBeatsStandardOnHardData) {
  // The paper's headline claim, as a correctness-level assertion: on an
  // improvable hard-to-compress dataset, preconditioned zlib achieves a
  // strictly better ratio than standard zlib on the identical bytes.
  auto dataset = Generate("gts_phi_l", 375000);
  ASSERT_TRUE(dataset.ok());

  CompressOptions options;
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kRow;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  auto zlib = GetCodec(CodecId::kZlib);
  ASSERT_TRUE(zlib.ok());
  Bytes standard;
  ASSERT_TRUE((*zlib)->Compress(dataset->bytes(), &standard).ok());
  const double standard_ratio = static_cast<double>(dataset->data.size()) /
                                static_cast<double>(standard.size());
  EXPECT_GT(stats.ratio(), standard_ratio);
}

TEST(IsobarPipelineTest, DecisionRecordsPreferenceAndEvidence) {
  auto dataset = Generate("s3d_vmag", 200000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.eupa.preference = Preference::kRatio;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 4, &stats);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(stats.decision.preference, Preference::kRatio);
  // Default candidates (zlib, bzip2, lzans) x both linearizations — unless
  // the ISOBAR_FORCE_CODEC CI lane pins the codec dimension to one.
  const size_t codecs = std::getenv("ISOBAR_FORCE_CODEC") != nullptr ? 1u : 3u;
  EXPECT_EQ(stats.decision.evaluations.size(), codecs * 2);
}

TEST(IsobarPipelineTest, AnalysisThroughputIsMeasured) {
  auto dataset = Generate("num_brain", 200000);
  ASSERT_TRUE(dataset.ok());
  const IsobarCompressor compressor;
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(stats.analysis_seconds, 0.0);
  EXPECT_GT(stats.analysis_mbps(), 0.0);
  EXPECT_GT(stats.compression_mbps(), 0.0);
}

// ---------------------------------------------------------------------------
// Telemetry invariants: the observability layer must agree with the
// pipeline's own statistics byte for byte.

class PipelineTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    telemetry::SetEnabled(true);
    telemetry::TraceRecorder::Global().SetEnabled(true);
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::SpanLog::Global().Clear();
    telemetry::TraceRecorder::Global().Clear();
  }

  void TearDown() override {
    if (!telemetry::kCompiledIn) return;
    telemetry::SetEnabled(false);
    telemetry::TraceRecorder::Global().SetEnabled(false);
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::SpanLog::Global().Clear();
    telemetry::TraceRecorder::Global().Clear();
  }

  uint64_t CounterValue(const char* name) {
    const telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::Global().Snapshot();
    const telemetry::CounterSnapshot* c = snapshot.FindCounter(name);
    return c == nullptr ? 0 : c->value;
  }
};

TEST_F(PipelineTelemetryTest, StageSecondsSumWithinTotal) {
  auto dataset = Generate("flash_velx", 300000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 100000;
  // The wall-clock containment below only holds for the serial pipeline:
  // with workers, stage sums are aggregate thread time and may exceed the
  // end-to-end total (see parallel_pipeline_test.cc for that bound).
  options.num_threads = 1;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  // The staged decomposition never exceeds the end-to-end wall clock.
  EXPECT_LE(stats.analysis_seconds + stats.partition_seconds +
                stats.codec_seconds,
            stats.total_seconds);

  DecompressOptions doptions;
  doptions.num_threads = 1;
  DecompressionStats dstats;
  auto restored = IsobarCompressor::Decompress(*compressed, doptions, &dstats);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(dstats.chunk_count, stats.chunk_count);
  EXPECT_EQ(dstats.input_bytes, compressed->size());
  EXPECT_EQ(dstats.output_bytes, dataset->data.size());
  EXPECT_GT(dstats.decode_seconds, 0.0);
  EXPECT_GT(dstats.scatter_seconds, 0.0);
  EXPECT_LE(dstats.parse_seconds + dstats.decode_seconds +
                dstats.scatter_seconds,
            dstats.total_seconds);
}

TEST_F(PipelineTelemetryTest, CountersMatchCompressionStats) {
  auto dataset = Generate("flash_velx", 300000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 100000;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  EXPECT_EQ(CounterValue("pipeline.compress_calls"), 1u);
  EXPECT_EQ(CounterValue("pipeline.compress_input_bytes"), stats.input_bytes);
  EXPECT_EQ(CounterValue("pipeline.compress_output_bytes"),
            stats.output_bytes);
  EXPECT_EQ(CounterValue("pipeline.chunks_encoded"), stats.chunk_count);
  EXPECT_EQ(CounterValue("pipeline.chunk_input_bytes"), stats.input_bytes);
  // The analyzer also runs once on the EUPA training probe, so its verdict
  // count can exceed the per-chunk tally by exactly that one probe.
  EXPECT_GE(CounterValue("analyzer.improvable_verdicts"),
            stats.improvable_chunks);
  EXPECT_EQ(CounterValue("analyzer.calls"), stats.chunk_count + 1);

  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(CounterValue("pipeline.decompress_calls"), 1u);
  EXPECT_EQ(CounterValue("pipeline.chunks_decoded"), stats.chunk_count);
  EXPECT_EQ(CounterValue("pipeline.checksum_failures"), 0u);
}

TEST_F(PipelineTelemetryTest, TraceByteTotalsMatchContainer) {
  auto dataset = Generate("gts_phi_l", 250000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 100000;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());

  const std::vector<telemetry::PipelineTrace> pipelines =
      telemetry::TraceRecorder::Global().Snapshot();
  ASSERT_EQ(pipelines.size(), 1u);
  const telemetry::PipelineTrace& p = pipelines[0];
  EXPECT_TRUE(p.finished);
  EXPECT_EQ(p.input_bytes, stats.input_bytes);
  EXPECT_EQ(p.output_bytes, stats.output_bytes);
  EXPECT_EQ(p.output_bytes, compressed->size());
  EXPECT_EQ(p.chunks.size(), stats.chunk_count);

  // The acceptance invariant: per-chunk byte accounting reconstructs the
  // container's totals exactly (chunk records plus the one header and the
  // v2 chunk-index footer).
  uint64_t chunk_in = 0, chunk_out = 0;
  for (const telemetry::ChunkTrace& chunk : p.chunks) {
    chunk_in += chunk.input_bytes;
    chunk_out += chunk.output_bytes;
  }
  EXPECT_EQ(chunk_in, p.input_bytes);
  EXPECT_EQ(chunk_out + p.header_bytes +
                container::FooterBytes(stats.chunk_count),
            p.output_bytes);

  // EUPA evidence rides along on the trace.
  EXPECT_EQ(p.candidates.size(), stats.decision.evaluations.size());
}

// ---------------------------------------------------------------------------
// Corruption and integrity.

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = Generate("gts_chkp_zeon", 150000);
    ASSERT_TRUE(dataset.ok());
    original_ = dataset->data;
    CompressOptions options;
    options.chunk_elements = 50000;
    options.eupa.forced_codec = CodecId::kZlib;
    const IsobarCompressor compressor(options);
    auto compressed = compressor.Compress(original_, 8);
    ASSERT_TRUE(compressed.ok());
    container_ = std::move(*compressed);
    // Chunk records end where the v2 index footer begins.
    payload_end_ = container_.size() - container::FooterBytes(3);
  }

  Bytes original_;
  Bytes container_;
  size_t payload_end_ = 0;
};

TEST_F(CorruptionTest, CleanContainerVerifies) {
  auto restored = IsobarCompressor::Decompress(container_);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, original_);
}

TEST_F(CorruptionTest, FlippedPayloadByteIsDetected) {
  // Flip a byte deep in the payload (well past headers): either the solver
  // stream breaks or the chunk CRC catches it.
  Bytes mutated = container_;
  mutated[mutated.size() / 2] ^= 0x01;
  auto restored = IsobarCompressor::Decompress(mutated);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, FlippedRawSectionByteCaughtByChecksum) {
  // The raw (incompressible) section is not protected by the solver's own
  // stream format, so only the CRC can catch damage there. The last bytes
  // of the last chunk (just before the index footer) belong to the raw
  // section.
  Bytes mutated = container_;
  mutated[payload_end_ - 3] ^= 0x40;
  auto restored = IsobarCompressor::Decompress(mutated);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, ChecksumVerificationCanBeDisabled) {
  Bytes mutated = container_;
  mutated[payload_end_ - 3] ^= 0x40;
  DecompressOptions options;
  options.verify_checksums = false;
  auto restored = IsobarCompressor::Decompress(mutated, options);
  // Without verification the damaged raw byte passes through silently.
  ASSERT_TRUE(restored.ok());
  EXPECT_NE(*restored, original_);
  EXPECT_EQ(restored->size(), original_.size());
}

TEST_F(CorruptionTest, TruncatedContainerIsDetected) {
  for (size_t cut : {container_.size() - 1, container_.size() / 2,
                     container::kHeaderSize + 5ul, 10ul}) {
    ByteSpan prefix(container_.data(), cut);
    auto restored = IsobarCompressor::Decompress(prefix);
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

TEST_F(CorruptionTest, TrailingGarbageIsDetected) {
  Bytes mutated = container_;
  mutated.push_back(0x00);
  auto restored = IsobarCompressor::Decompress(mutated);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, NotAContainerIsRejected) {
  Bytes garbage(1000, 0xAB);
  auto restored = IsobarCompressor::Decompress(garbage);
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace isobar
