#include <gtest/gtest.h>

#include <tuple>

#include "core/partitioner.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

class PartitionRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, Linearization>> {};

TEST_P(PartitionRoundTripTest, PartitionThenMergeIsIdentity) {
  const auto [width, mask_pattern, lin] = GetParam();
  const uint64_t full = width >= 64 ? ~0ull : ((1ull << width) - 1);
  const uint64_t mask = mask_pattern & full;
  const Bytes data = RandomBytes(width * 333, width + mask_pattern);

  Partition partition;
  ASSERT_TRUE(PartitionData(data, width, mask, lin, &partition).ok());
  EXPECT_EQ(partition.element_count, 333u);
  EXPECT_EQ(partition.compressible.size(),
            333u * static_cast<size_t>(PopcountMask(mask, width)));
  EXPECT_EQ(partition.compressible.size() + partition.incompressible.size(),
            data.size());

  Bytes merged;
  ASSERT_TRUE(MergePartition(partition, &merged).ok());
  EXPECT_EQ(merged, data);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsMasksLinearizations, PartitionRoundTripTest,
    ::testing::Combine(
        ::testing::Values<size_t>(1, 4, 8, 16, 64),
        ::testing::Values<uint64_t>(0x0ull, 0x1ull, 0xC0ull,
                                    0xAAAAAAAAAAAAAAAAull, ~0ull),
        ::testing::Values(Linearization::kRow, Linearization::kColumn)));

TEST(PartitionerTest, KnownSplitExample) {
  // Paper's running example (§II.B): ω = 8, mask 10000010 in output-array
  // notation means columns 1 and 7 are compressible. Our bit j = column j.
  Bytes data;
  for (uint8_t i = 0; i < 2; ++i) {
    for (uint8_t j = 0; j < 8; ++j) {
      data.push_back(static_cast<uint8_t>(10 * i + j));
    }
  }
  const uint64_t mask = (1ull << 1) | (1ull << 7);
  Partition partition;
  ASSERT_TRUE(
      PartitionData(data, 8, mask, Linearization::kRow, &partition).ok());
  EXPECT_EQ(partition.compressible, (Bytes{1, 7, 11, 17}));
  EXPECT_EQ(partition.incompressible, (Bytes{0, 2, 3, 4, 5, 6, 10, 12, 13, 14, 15, 16}));
}

TEST(PartitionerTest, ColumnLinearizationOfCompressibleStream) {
  Bytes data = {1, 2, 3, 4, 5, 6};  // width 2, 3 elements
  Partition partition;
  ASSERT_TRUE(PartitionData(data, 2, 0b11, Linearization::kColumn, &partition).ok());
  EXPECT_EQ(partition.compressible, (Bytes{1, 3, 5, 2, 4, 6}));
  EXPECT_TRUE(partition.incompressible.empty());
}

TEST(PartitionerTest, EmptyMaskPutsEverythingInNoise) {
  const Bytes data = RandomBytes(8 * 10, 1);
  Partition partition;
  ASSERT_TRUE(PartitionData(data, 8, 0, Linearization::kRow, &partition).ok());
  EXPECT_TRUE(partition.compressible.empty());
  EXPECT_EQ(partition.incompressible, data);  // row order = original order
  Bytes merged;
  ASSERT_TRUE(MergePartition(partition, &merged).ok());
  EXPECT_EQ(merged, data);
}

TEST(PartitionerTest, EmptyInputSupported) {
  Partition partition;
  ASSERT_TRUE(PartitionData({}, 8, 0xFF, Linearization::kRow, &partition).ok());
  EXPECT_EQ(partition.element_count, 0u);
  Bytes merged;
  ASSERT_TRUE(MergePartition(partition, &merged).ok());
  EXPECT_TRUE(merged.empty());
}

TEST(PartitionerTest, InvalidGeometryRejected) {
  Partition partition;
  EXPECT_FALSE(PartitionData(Bytes(15, 0), 8, 1, Linearization::kRow, &partition).ok());
  EXPECT_FALSE(PartitionData(Bytes(16, 0), 0, 1, Linearization::kRow, &partition).ok());
  EXPECT_FALSE(
      PartitionData(Bytes(16, 0), 2, 0b100, Linearization::kRow, &partition).ok());
}

TEST(PartitionerTest, MergeRejectsCorruptPartition) {
  Partition partition;
  partition.width = 8;
  partition.element_count = 4;
  partition.compressible_mask = 0x0F;
  partition.compressible = Bytes(10, 0);  // should be 16
  partition.incompressible = Bytes(16, 0);
  Bytes merged;
  EXPECT_FALSE(MergePartition(partition, &merged).ok());
}

}  // namespace
}  // namespace isobar
