// Cross-thread timeline suite: the per-thread seqlock rings (ordering
// under a loaded 8-worker pool, wrap-around drop accounting), thread
// naming, the Chrome trace-event exporter (validated with the strict
// JSON reader so the export and its consumer check each other), the
// flight-recorder snapshot, and its embedding in SalvageReport.
#include "telemetry/timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/container.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "io/fault_injection.h"
#include "telemetry/json_reader.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/thread_pool.h"

namespace isobar::telemetry {
namespace {

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    SetEnabled(true);
    Timeline::Global().SetEnabled(true);
    Timeline::Global().Clear();
  }
  void TearDown() override {
    if (!kCompiledIn) return;
    Timeline::Global().SetEnabled(false);
    Timeline::Global().Clear();
    Timeline::Global().set_capacity_per_thread(8192);
    SetEnabled(false);
  }
};

/// The calling thread's snapshot, located by a sentinel event it just
/// emitted (tids are registration-order and tests share the process).
ThreadTimelineSnapshot FindThreadWith(const char* sentinel) {
  for (auto& thread : Timeline::Global().Snapshot()) {
    for (const auto& event : thread.events) {
      if (event.name == sentinel) return thread;
    }
  }
  return {};
}

TEST_F(TimelineTest, EmitRoundTripsAllFields) {
  Timeline::SetCurrentThreadName("timeline-test");
  Timeline::Emit("unit.sentinel.roundtrip", TimelinePhase::kComplete, 1000,
                 250, 7, 3);
  const ThreadTimelineSnapshot thread =
      FindThreadWith("unit.sentinel.roundtrip");
  ASSERT_FALSE(thread.events.empty());
  EXPECT_EQ(thread.name, "timeline-test");
  const TimelineEventSnapshot& event = thread.events.back();
  EXPECT_EQ(event.name, "unit.sentinel.roundtrip");
  EXPECT_EQ(event.phase, TimelinePhase::kComplete);
  EXPECT_EQ(event.start_nanos, 1000);
  EXPECT_EQ(event.duration_nanos, 250);
  EXPECT_EQ(event.arg0, 7u);
  EXPECT_EQ(event.arg1, 3u);
}

TEST_F(TimelineTest, DisabledEmitIsInert) {
  Timeline::Emit("unit.sentinel.before", TimelinePhase::kInstant, 1, 0);
  Timeline::Global().SetEnabled(false);
  Timeline::Emit("unit.sentinel.while_off", TimelinePhase::kInstant, 2, 0);
  Timeline::Global().SetEnabled(true);
  const ThreadTimelineSnapshot thread =
      FindThreadWith("unit.sentinel.before");
  ASSERT_FALSE(thread.events.empty());
  for (const auto& event : thread.events) {
    EXPECT_NE(event.name, "unit.sentinel.while_off");
  }
}

TEST_F(TimelineTest, ScopedSpanEmitsCompleteEventWithArgs) {
  { ScopedSpan span("unit.span.timeline", 42, 6); }
  const ThreadTimelineSnapshot thread = FindThreadWith("unit.span.timeline");
  ASSERT_FALSE(thread.events.empty());
  const TimelineEventSnapshot& event = thread.events.back();
  EXPECT_EQ(event.phase, TimelinePhase::kComplete);
  EXPECT_GE(event.duration_nanos, 0);
  EXPECT_EQ(event.arg0, 42u);   // pipeline id
  EXPECT_EQ(event.arg1, 6u);    // chunk ordinal + 1
}

TEST_F(TimelineTest, RingWrapCountsDroppedEvents) {
  // Capacity applies to threads registered after the call, so the wrap
  // is driven from a fresh thread with its own 16-slot ring.
  Timeline::Global().set_capacity_per_thread(16);
  const uint64_t dropped_before =
      GetCounter("telemetry.events_dropped").value();
  std::thread emitter([] {
    Timeline::SetCurrentThreadName("wrap-test");
    for (int i = 0; i < 100; ++i) {
      Timeline::Emit("unit.sentinel.wrap", TimelinePhase::kComplete, i, 1);
    }
  });
  emitter.join();
  const ThreadTimelineSnapshot thread = FindThreadWith("unit.sentinel.wrap");
  EXPECT_EQ(thread.name, "wrap-test");
  EXPECT_EQ(thread.events.size(), 16u);
  EXPECT_EQ(thread.dropped, 84u);
  // Oldest events were evicted: the surviving window is the newest 16.
  EXPECT_EQ(thread.events.front().start_nanos, 84);
  EXPECT_EQ(thread.events.back().start_nanos, 99);
  EXPECT_GE(GetCounter("telemetry.events_dropped").value(),
            dropped_before + 84);
}

TEST_F(TimelineTest, PerThreadOrderingHoldsUnderLoadedPool) {
  // Eight workers hammer spans concurrently while the main thread takes
  // snapshots mid-run. Each thread's ring must come back oldest-to-newest
  // (per-thread monotonic starts: spans close in LIFO order on a thread,
  // and the ring orders by emit = close time, so end times are what is
  // monotonic per thread) and the export must stay valid JSON throughout.
  ThreadPool pool(8);
  std::atomic<bool> stop{false};
  std::vector<std::future<void>> tasks;
  for (int t = 0; t < 8; ++t) {
    tasks.push_back(pool.Submit([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan outer("unit.load.outer", 1, 1);
        ScopedSpan inner("unit.load.inner", 1, 2);
      }
    }));
  }
  for (int i = 0; i < 20; ++i) {
    const auto mid_run = Timeline::Global().Snapshot();
    for (const auto& thread : mid_run) {
      int64_t last_end = INT64_MIN;
      for (const auto& event : thread.events) {
        const int64_t end = event.start_nanos + event.duration_nanos;
        EXPECT_GE(end, last_end) << "ring not oldest-to-newest on thread "
                                 << thread.tid;
        last_end = end;
      }
    }
  }
  stop.store(true);
  for (auto& task : tasks) task.get();

  const std::string json =
      TimelineToJson(Timeline::Global().Snapshot());
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Every pool worker that emitted has a named track.
  int named_workers = 0;
  for (const JsonValue& event : events->array_items()) {
    if (event.FieldStringOr("ph", "") != "M") continue;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    if (args->FieldStringOr("name", "").rfind("worker-", 0) == 0) {
      ++named_workers;
    }
  }
  EXPECT_GE(named_workers, 1);
}

TEST_F(TimelineTest, SnapshotRecentKeepsLatestFinishers) {
  Timeline::Emit("unit.recent.early", TimelinePhase::kComplete, 0, 10);
  Timeline::Emit("unit.recent.longrunner", TimelinePhase::kComplete, 5, 100);
  Timeline::Emit("unit.recent.late", TimelinePhase::kComplete, 50, 10);
  const auto recent = Timeline::Global().SnapshotRecent(2);
  ASSERT_EQ(recent.size(), 2u);
  // Kept by latest end time (105 and 60), returned in start order.
  EXPECT_EQ(recent[0].name, "unit.recent.longrunner");
  EXPECT_EQ(recent[1].name, "unit.recent.late");
}

TEST_F(TimelineTest, TimelineJsonArgsDecodeChunkOrdinal) {
  Timeline::Emit("unit.sentinel.args", TimelinePhase::kComplete, 10, 5,
                 /*arg0=*/9, /*arg1=*/4);
  const std::string json = TimelineToJson(Timeline::Global().Snapshot());
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const JsonValue& event : events->array_items()) {
    if (event.FieldStringOr("name", "") != "unit.sentinel.args") continue;
    found = true;
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->FieldNumberOr("pipeline", -1), 9);
    // The stored chunk+1 encoding is decoded back to the 0-based ordinal.
    EXPECT_EQ(args->FieldNumberOr("chunk", -1), 3);
  }
  EXPECT_TRUE(found);
}

TEST_F(TimelineTest, FlightRecorderJsonIsValid) {
  Timeline::Emit("unit.sentinel.flight", TimelinePhase::kComplete, 1, 2);
  const auto recent = Timeline::Global().SnapshotRecent(8);
  ASSERT_FALSE(recent.empty());
  auto parsed = ParseJson(FlightRecorderToJson(recent));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->is_array());
}

// --- Flight recorder embedding in SalvageReport --------------------------

Bytes MakeDamagedContainer() {
  auto spec = FindDatasetSpec("s3d_vmag");
  EXPECT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 30000);
  EXPECT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 10000;
  options.eupa.sample_elements = 2048;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width());
  EXPECT_TRUE(compressed.ok());
  // Flip a payload byte in the middle record so its CRC (or the solver's
  // framing) rejects it while the record stays self-delimiting.
  Bytes mutated = *compressed;
  size_t offset = 0;
  auto header = container::ParseHeader(mutated, &offset);
  EXPECT_TRUE(header.ok());
  auto chunk0 = container::ParseChunkHeader(mutated, &offset);
  EXPECT_TRUE(chunk0.ok());
  offset += chunk0->compressed_size + chunk0->raw_size;
  auto chunk1 = container::ParseChunkHeader(mutated, &offset);
  EXPECT_TRUE(chunk1.ok());
  FlipBits(&mutated,
           offset + (chunk1->compressed_size + chunk1->raw_size) / 2, 0x20);
  return mutated;
}

TEST_F(TimelineTest, SalvageReportCarriesFlightRecorder) {
  const Bytes mutated = MakeDamagedContainer();
  SalvageReport report;
  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kSkip;
  options.salvage_report = &report;
  auto restored = IsobarCompressor::Decompress(mutated, options);
  ASSERT_TRUE(restored.ok());
  ASSERT_FALSE(report.clean());
  // The decode pipeline emitted events, so the post-mortem window is
  // populated and exports as valid JSON.
  ASSERT_FALSE(report.flight_recorder.empty());
  auto parsed = ParseJson(FlightRecorderToJson(report.flight_recorder));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool saw_decode = false;
  for (const auto& event : report.flight_recorder) {
    if (event.name == "decompress.chunk" || event.name == "chunk.decode") {
      saw_decode = true;
    }
  }
  EXPECT_TRUE(saw_decode);
}

TEST_F(TimelineTest, CleanDecodeLeavesFlightRecorderEmpty) {
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 20000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 10000;
  options.eupa.sample_elements = 2048;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width());
  ASSERT_TRUE(compressed.ok());
  SalvageReport report;
  DecompressOptions doptions;
  doptions.on_chunk_error = ChunkErrorPolicy::kSkip;
  doptions.salvage_report = &report;
  auto restored = IsobarCompressor::Decompress(*compressed, doptions);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.flight_recorder.empty());
}

}  // namespace
}  // namespace isobar::telemetry
