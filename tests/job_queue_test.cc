#include "server/job_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/isobar.h"
#include "util/bytes.h"

namespace isobar::server {
namespace {

Bytes RampBytes(size_t elements, size_t width) {
  Bytes data(elements * width, 0);
  for (size_t i = 0; i < elements; ++i) {
    data[i * width] = static_cast<uint8_t>(i & 0x3F);
  }
  return data;
}

JobRequest CompressRequest(size_t elements = 512) {
  JobRequest request;
  request.kind = JobKind::kCompress;
  request.input = RampBytes(elements, 8);
  request.width = 8;
  request.compress_options.eupa.forced_codec = CodecId::kZlib;
  request.compress_options.eupa.forced_linearization = Linearization::kColumn;
  return request;
}

TEST(JobQueueTest, ExecutesCompressAndDecompressRoundTrip) {
  JobQueueOptions options;
  options.num_threads = 2;
  JobQueue queue(options);

  const JobRequest compress = CompressRequest();
  std::mutex mutex;
  JobResult compress_result;
  std::atomic<bool> done{false};
  ASSERT_EQ(queue.Submit(1, compress,
                         [&](JobResult result) {
                           std::lock_guard<std::mutex> lock(mutex);
                           compress_result = std::move(result);
                           done = true;
                         }),
            Admission::kAdmitted);
  queue.WaitIdle();
  ASSERT_TRUE(done.load());
  ASSERT_TRUE(compress_result.status.ok())
      << compress_result.status.ToString();
  EXPECT_GT(compress_result.exec_nanos, 0);
  EXPECT_GE(compress_result.queue_nanos, 0);

  JobRequest decompress;
  decompress.kind = JobKind::kDecompress;
  decompress.input = compress_result.output;
  JobResult decompress_result;
  done = false;
  ASSERT_EQ(queue.Submit(1, decompress,
                         [&](JobResult result) {
                           std::lock_guard<std::mutex> lock(mutex);
                           decompress_result = std::move(result);
                           done = true;
                         }),
            Admission::kAdmitted);
  queue.WaitIdle();
  ASSERT_TRUE(done.load());
  ASSERT_TRUE(decompress_result.status.ok());
  EXPECT_EQ(decompress_result.output, compress.input);

  const auto stats = queue.Stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected_total(), 0u);
}

TEST(JobQueueTest, ExecuteJobMatchesDirectLibraryCall) {
  const JobRequest request = CompressRequest();
  const JobResult via_queue = JobQueue::ExecuteJob(request);
  ASSERT_TRUE(via_queue.status.ok());

  CompressOptions direct_options = request.compress_options;
  direct_options.num_threads = 1;
  IsobarCompressor compressor(direct_options);
  auto direct = compressor.Compress(request.input, request.width);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_queue.output, *direct);
}

TEST(JobQueueTest, FailedJobReportsStatusThroughCallback) {
  JobQueueOptions options;
  options.num_threads = 1;
  JobQueue queue(options);

  JobRequest bad;
  bad.kind = JobKind::kDecompress;
  bad.input = RampBytes(16, 8);  // Not a container.
  JobResult result;
  std::atomic<bool> done{false};
  ASSERT_EQ(queue.Submit(1, bad,
                         [&](JobResult r) {
                           result = std::move(r);
                           done = true;
                         }),
            Admission::kAdmitted);
  queue.WaitIdle();
  ASSERT_TRUE(done.load());
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(queue.Stats().failed, 1u);
}

// The deterministic saturation story: Pause() freezes dispatch, so
// admission fills the bounded queue to exactly max_queue_depth, the next
// submit is shed with kQueueFull, and Resume() drains everything — no
// sleeps, no timing assumptions.
TEST(JobQueueTest, QueueFillsToBoundThenShedsThenDrains) {
  JobQueueOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 4;
  options.max_inflight_per_connection = 100;  // Not under test here.
  JobQueue queue(options);
  queue.Pause();

  std::atomic<uint64_t> completed{0};
  const auto on_done = [&](JobResult result) {
    ASSERT_TRUE(result.status.ok());
    ++completed;
  };

  // Paused: nothing dispatches, so every admitted job stays queued.
  for (size_t i = 0; i < options.max_queue_depth; ++i) {
    ASSERT_EQ(queue.Submit(/*connection_id=*/i, CompressRequest(64), on_done),
              Admission::kAdmitted)
        << "submit " << i;
  }
  EXPECT_EQ(queue.Stats().queue_depth, options.max_queue_depth);
  EXPECT_EQ(queue.Stats().running, 0u);

  // Bound reached: shed, and the rejection is accounted.
  EXPECT_EQ(queue.Submit(99, CompressRequest(64), on_done),
            Admission::kQueueFull);
  EXPECT_EQ(queue.Submit(100, CompressRequest(64), on_done),
            Admission::kQueueFull);
  EXPECT_EQ(queue.Stats().rejected_queue_full, 2u);
  EXPECT_EQ(completed.load(), 0u);

  // Drain, then the queue accepts again.
  queue.Resume();
  queue.WaitIdle();
  EXPECT_EQ(completed.load(), options.max_queue_depth);
  EXPECT_EQ(queue.Stats().queue_depth, 0u);
  EXPECT_EQ(queue.Submit(101, CompressRequest(64), on_done),
            Admission::kAdmitted);
  queue.WaitIdle();
  EXPECT_EQ(completed.load(), options.max_queue_depth + 1);
  EXPECT_EQ(queue.Stats().queue_depth_high_water, options.max_queue_depth);
}

TEST(JobQueueTest, PerConnectionLimitShedsGreedyClient) {
  JobQueueOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 100;
  options.max_inflight_per_connection = 3;
  JobQueue queue(options);
  queue.Pause();

  std::atomic<uint64_t> completed{0};
  const auto on_done = [&](JobResult) { ++completed; };

  for (size_t i = 0; i < options.max_inflight_per_connection; ++i) {
    ASSERT_EQ(queue.Submit(/*connection_id=*/7, CompressRequest(64), on_done),
              Admission::kAdmitted);
  }
  // The greedy connection is capped...
  EXPECT_EQ(queue.Submit(7, CompressRequest(64), on_done),
            Admission::kConnectionLimit);
  EXPECT_EQ(queue.Stats().rejected_connection_limit, 1u);
  // ...but another connection is still welcome.
  EXPECT_EQ(queue.Submit(8, CompressRequest(64), on_done),
            Admission::kAdmitted);

  queue.Resume();
  queue.WaitIdle();
  EXPECT_EQ(completed.load(), options.max_inflight_per_connection + 1);

  // Drained: the formerly-capped connection is admitted again.
  EXPECT_EQ(queue.Submit(7, CompressRequest(64), on_done),
            Admission::kAdmitted);
  queue.WaitIdle();
}

TEST(JobQueueTest, ShutdownRejectsNewWorkAndDrains) {
  JobQueueOptions options;
  options.num_threads = 2;
  JobQueue queue(options);
  queue.Pause();

  std::atomic<uint64_t> completed{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.Submit(1, CompressRequest(64),
                           [&](JobResult) { ++completed; }),
              Admission::kAdmitted);
  }
  // Shutdown resumes a paused queue (drain must progress) and waits.
  queue.Shutdown();
  EXPECT_EQ(completed.load(), 3u);
  EXPECT_EQ(queue.Submit(1, CompressRequest(64), [](JobResult) {}),
            Admission::kShuttingDown);
  EXPECT_EQ(queue.Stats().rejected_shutdown, 1u);
  queue.Shutdown();  // Idempotent.
}

TEST(JobQueueTest, ManyConcurrentJobsAllComplete) {
  JobQueueOptions options;
  options.num_threads = 4;
  options.max_queue_depth = 1000;
  options.max_inflight_per_connection = 1000;
  JobQueue queue(options);

  constexpr int kJobs = 64;
  std::atomic<int> ok{0};
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_EQ(queue.Submit(static_cast<uint64_t>(i % 4), CompressRequest(256),
                           [&](JobResult result) {
                             if (result.status.ok()) ++ok;
                           }),
              Admission::kAdmitted);
  }
  queue.WaitIdle();
  EXPECT_EQ(ok.load(), kJobs);
  const auto stats = queue.Stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kJobs));
}

}  // namespace
}  // namespace isobar::server
