#include <gtest/gtest.h>

#include "core/container.h"

namespace isobar::container {
namespace {

Header SampleHeader() {
  Header h;
  h.width = 8;
  h.codec = CodecId::kBzip2;
  h.linearization = Linearization::kColumn;
  h.preference = Preference::kRatio;
  h.tau_centi = 142;
  h.element_count = 1234567;
  h.chunk_elements = 375000;
  h.chunk_count = 4;
  return h;
}

ChunkHeader SampleChunkHeader() {
  ChunkHeader ch;
  ch.element_count = 375000;
  ch.compressible_mask = 0xC1;
  ch.flags = 0;
  ch.crc32c = 0xDEADBEEF;
  ch.compressed_size = 0;
  ch.raw_size = 0;
  return ch;
}

TEST(ContainerHeaderTest, SerializeParseRoundTrip) {
  Bytes buffer;
  AppendHeader(SampleHeader(), &buffer);
  EXPECT_EQ(buffer.size(), kHeaderSize);

  size_t offset = 0;
  auto parsed = ParseHeader(buffer, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(offset, kHeaderSize);
  EXPECT_EQ(parsed->width, 8);
  EXPECT_EQ(parsed->codec, CodecId::kBzip2);
  EXPECT_EQ(parsed->linearization, Linearization::kColumn);
  EXPECT_EQ(parsed->preference, Preference::kRatio);
  EXPECT_EQ(parsed->tau_centi, 142);
  EXPECT_EQ(parsed->element_count, 1234567u);
  EXPECT_EQ(parsed->chunk_elements, 375000u);
  EXPECT_EQ(parsed->chunk_count, 4u);
}

TEST(ContainerHeaderTest, BadMagicRejected) {
  Bytes buffer;
  AppendHeader(SampleHeader(), &buffer);
  buffer[0] ^= 0xFF;
  size_t offset = 0;
  EXPECT_EQ(ParseHeader(buffer, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(ContainerHeaderTest, UnsupportedVersionRejected) {
  Bytes buffer;
  AppendHeader(SampleHeader(), &buffer);
  StoreLE16(buffer.data() + 4, 999);
  size_t offset = 0;
  EXPECT_EQ(ParseHeader(buffer, &offset).status().code(),
            StatusCode::kNotSupported);
}

TEST(ContainerHeaderTest, InvalidFieldsRejected) {
  {
    Bytes buffer;
    AppendHeader(SampleHeader(), &buffer);
    buffer[8] = 0;  // width
    size_t offset = 0;
    EXPECT_FALSE(ParseHeader(buffer, &offset).ok());
  }
  {
    Bytes buffer;
    AppendHeader(SampleHeader(), &buffer);
    buffer[8] = 65;  // width too large
    size_t offset = 0;
    EXPECT_FALSE(ParseHeader(buffer, &offset).ok());
  }
  {
    Bytes buffer;
    AppendHeader(SampleHeader(), &buffer);
    buffer[9] = 99;  // unknown codec
    size_t offset = 0;
    EXPECT_FALSE(ParseHeader(buffer, &offset).ok());
  }
  {
    Bytes buffer;
    AppendHeader(SampleHeader(), &buffer);
    buffer[10] = 2;  // unknown linearization
    size_t offset = 0;
    EXPECT_FALSE(ParseHeader(buffer, &offset).ok());
  }
  {
    Bytes buffer;
    AppendHeader(SampleHeader(), &buffer);
    buffer[11] = 7;  // unknown preference
    size_t offset = 0;
    EXPECT_FALSE(ParseHeader(buffer, &offset).ok());
  }
}

TEST(ContainerHeaderTest, TruncationAtEveryPrefixRejected) {
  Bytes buffer;
  AppendHeader(SampleHeader(), &buffer);
  for (size_t len = 0; len < buffer.size(); ++len) {
    size_t offset = 0;
    ByteSpan prefix(buffer.data(), len);
    EXPECT_FALSE(ParseHeader(prefix, &offset).ok()) << "length " << len;
  }
}

TEST(ContainerHeaderTest, ParsesAtNonZeroOffset) {
  Bytes buffer(10, 0xEE);
  AppendHeader(SampleHeader(), &buffer);
  size_t offset = 10;
  auto parsed = ParseHeader(buffer, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(offset, 10 + kHeaderSize);
}

TEST(ChunkHeaderTest, SerializeParseRoundTrip) {
  ChunkHeader ch = SampleChunkHeader();
  ch.flags = kChunkUndetermined;
  ch.compressed_size = 100;
  Bytes buffer;
  AppendChunkHeader(ch, &buffer);
  EXPECT_EQ(buffer.size(), kChunkHeaderSize);
  buffer.resize(buffer.size() + 100);  // payload present

  size_t offset = 0;
  auto parsed = ParseChunkHeader(buffer, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(offset, kChunkHeaderSize);
  EXPECT_EQ(parsed->element_count, 375000u);
  EXPECT_EQ(parsed->compressible_mask, 0xC1u);
  EXPECT_EQ(parsed->flags, kChunkUndetermined);
  EXPECT_EQ(parsed->crc32c, 0xDEADBEEFu);
  EXPECT_EQ(parsed->compressed_size, 100u);
  EXPECT_EQ(parsed->raw_size, 0u);
}

TEST(ChunkHeaderTest, UnknownFlagsRejected) {
  ChunkHeader ch = SampleChunkHeader();
  ch.flags = 0x80;
  Bytes buffer;
  AppendChunkHeader(ch, &buffer);
  size_t offset = 0;
  EXPECT_EQ(ParseChunkHeader(buffer, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(ChunkHeaderTest, PayloadSizeOverflowRejected) {
  // Sizes chosen so compressed + raw wraps past 2^64; the parser must not
  // be fooled by the wrapped sum.
  ChunkHeader ch = SampleChunkHeader();
  ch.compressed_size = ~0ull - 10;
  ch.raw_size = 100;
  Bytes buffer;
  AppendChunkHeader(ch, &buffer);
  buffer.resize(buffer.size() + 64);
  size_t offset = 0;
  EXPECT_EQ(ParseChunkHeader(buffer, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(ChunkHeaderTest, MissingPayloadRejected) {
  ChunkHeader ch = SampleChunkHeader();
  ch.compressed_size = 50;
  ch.raw_size = 50;
  Bytes buffer;
  AppendChunkHeader(ch, &buffer);
  buffer.resize(buffer.size() + 99);  // one byte short
  size_t offset = 0;
  EXPECT_EQ(ParseChunkHeader(buffer, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(ChunkHeaderTest, SequentialChunksParse) {
  Bytes buffer;
  for (int i = 0; i < 3; ++i) {
    ChunkHeader ch = SampleChunkHeader();
    ch.element_count = 100 + i;
    ch.compressed_size = static_cast<uint64_t>(i);
    AppendChunkHeader(ch, &buffer);
    buffer.resize(buffer.size() + i);  // payload
  }
  size_t offset = 0;
  for (int i = 0; i < 3; ++i) {
    auto parsed = ParseChunkHeader(buffer, &offset);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->element_count, 100u + i);
    offset += parsed->compressed_size + parsed->raw_size;
  }
  EXPECT_EQ(offset, buffer.size());
}

}  // namespace
}  // namespace isobar::container
