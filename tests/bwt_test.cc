#include <gtest/gtest.h>

#include <string>

#include "compressors/bwt_codec.h"
#include "compressors/registry.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes TextLike(size_t n) {
  const std::string phrase =
      "block sorting brings equal contexts together; ";
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t take = std::min(phrase.size(), n - out.size());
    out.insert(out.end(), phrase.begin(), phrase.begin() + take);
  }
  return out;
}

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

void RoundTrip(const Bytes& input) {
  const BwtCodec codec;
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  ASSERT_EQ(out, input);
}

TEST(BwtCodecTest, EmptyRoundTrip) { RoundTrip({}); }

TEST(BwtCodecTest, SingleByteRoundTrip) { RoundTrip({0x42}); }

TEST(BwtCodecTest, PeriodicDataRoundTrips) {
  // Identical rotations exercise the tie-handling of the suffix sort.
  Bytes input;
  for (int i = 0; i < 4096; ++i) input.push_back(i % 2 ? 'a' : 'b');
  RoundTrip(input);
  RoundTrip(Bytes(5000, 0x77));  // fully constant
}

TEST(BwtCodecTest, ClassicBananaExample) {
  const std::string banana = "banana";
  RoundTrip(Bytes(banana.begin(), banana.end()));
}

TEST(BwtCodecTest, TextRoundTripsAndCompresses) {
  const Bytes input = TextLike(100000);
  const BwtCodec codec;
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  // Highly repetitive text: block sorting should crush it.
  EXPECT_LT(compressed.size(), input.size() / 8);
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(BwtCodecTest, RandomDataRoundTrips) {
  RoundTrip(RandomBytes(70000, 1));
}

TEST(BwtCodecTest, MultiBlockInputRoundTrips) {
  // > 256 KiB forces multiple BWT blocks, including a short tail block.
  Bytes input = TextLike(300000);
  Bytes noise = RandomBytes(50000, 2);
  input.insert(input.end(), noise.begin(), noise.end());
  RoundTrip(input);
}

TEST(BwtCodecTest, BlockBoundaryExactMultiple) {
  RoundTrip(TextLike(256 * 1024));      // exactly one block
  RoundTrip(TextLike(2 * 256 * 1024));  // exactly two blocks
}

TEST(BwtCodecTest, BeatsPlainHuffmanOnContextualData) {
  // Order-0 Huffman cannot exploit context; BWT+MTF turns context into
  // zero runs. Text must compress far better through the full pipeline.
  const Bytes input = TextLike(200000);
  const BwtCodec bwt;
  Bytes bwt_out;
  ASSERT_TRUE(bwt.Compress(input, &bwt_out).ok());

  auto huffman = GetCodecByName("huffman");
  ASSERT_TRUE(huffman.ok());
  Bytes huffman_out;
  ASSERT_TRUE((*huffman)->Compress(input, &huffman_out).ok());
  EXPECT_LT(bwt_out.size(), huffman_out.size() / 3);
}

TEST(BwtCodecTest, CorruptStreamsDetected) {
  const Bytes input = TextLike(50000);
  const BwtCodec codec;
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes out;

  // Wrong expected size.
  EXPECT_FALSE(codec.Decompress(compressed, input.size() - 1, &out).ok());
  // Truncations.
  for (size_t cut : {size_t{4}, size_t{10}, compressed.size() / 2,
                     compressed.size() - 1}) {
    ByteSpan prefix(compressed.data(), cut);
    EXPECT_FALSE(codec.Decompress(prefix, input.size(), &out).ok())
        << "cut " << cut;
  }
  // Primary index out of range.
  Bytes bad_primary = compressed;
  StoreLE32(bad_primary.data() + 8, 0xFFFFFFFFu);
  EXPECT_EQ(codec.Decompress(bad_primary, input.size(), &out).code(),
            StatusCode::kCorruption);
  // Implausible transformed size.
  Bytes bad_size = compressed;
  StoreLE32(bad_size.data() + 12, 0xFFFFFFFFu);
  EXPECT_EQ(codec.Decompress(bad_size, input.size(), &out).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace isobar
