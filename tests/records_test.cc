#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/isobar.h"
#include "datagen/records.h"

namespace isobar {
namespace {

GeneratorParams NoisyLane(int noise_bytes) {
  GeneratorParams params;
  params.noise_bytes = noise_bytes;
  return params;
}

TEST(RecordsTest, GeometryAndInterleaving) {
  RecordSpec spec;
  spec.lanes = {NoisyLane(0), NoisyLane(0)};
  spec.seed = 2;
  auto records = GenerateRecords(spec, 1000);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->width(), 16u);
  EXPECT_EQ(records->lanes, 2u);
  EXPECT_EQ(records->element_count(), 1000u);

  // The interleave must place lane j's scalar at record offset j*8: the
  // exponent byte (offset 7 within a double) of every lane of every
  // record must look like a [1,2) double (0x3F).
  for (uint64_t r = 0; r < 1000; ++r) {
    for (size_t lane = 0; lane < 2; ++lane) {
      ASSERT_EQ(records->data[r * 16 + lane * 8 + 7], 0x3F)
          << "record " << r << " lane " << lane;
    }
  }
}

TEST(RecordsTest, AnalyzerResolvesPerLaneStructure) {
  // Lane 0: 6 noise bytes; lane 1: clean quantized signal; lane 2: fully
  // noisy except exponent. The analyzer's 24-byte-column verdict must
  // recover exactly that layout.
  RecordSpec spec;
  spec.lanes = {NoisyLane(6), NoisyLane(0), NoisyLane(6)};
  spec.seed = 3;
  auto records = GenerateRecords(spec, 100000);
  ASSERT_TRUE(records.ok());

  const Analyzer analyzer;
  auto analysis = analyzer.Analyze(records->bytes(), records->width());
  ASSERT_TRUE(analysis.ok());
  // Per lane of 8 bytes: noisy lanes contribute mask 0xC0 (top two bytes
  // structured), the clean lane 0xFF.
  const uint64_t expected = 0xC0ull | (0xFFull << 8) | (0xC0ull << 16);
  EXPECT_EQ(analysis->compressible_mask, expected);
  EXPECT_TRUE(analysis->improvable());
  EXPECT_NEAR(analysis->htc_byte_fraction(), 12.0 / 24.0, 1e-9);
}

TEST(RecordsTest, EightLanePipelineRoundTrip) {
  // The xgc_iphase shape: 8 doubles per ion, mixed noise levels, ω = 64.
  RecordSpec spec;
  spec.lanes.assign(8, NoisyLane(6));
  spec.lanes[0] = NoisyLane(0);  // quantized coordinate
  spec.lanes[1] = NoisyLane(2);  // low-noise coordinate
  spec.seed = 4;
  auto records = GenerateRecords(spec, 40000);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->width(), 64u);

  CompressOptions options;
  options.chunk_elements = 15000;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed =
      compressor.Compress(records->bytes(), records->width(), &stats);
  ASSERT_TRUE(compressed.ok());
  EXPECT_TRUE(stats.improvable);
  EXPECT_GT(stats.ratio(), 1.2);  // 38 of 64 bytes are noise

  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, records->data);
}

TEST(RecordsTest, FloatLanesSupported) {
  RecordSpec spec;
  spec.lane_type = ElementType::kFloat32;
  spec.lanes = {NoisyLane(1), NoisyLane(2), NoisyLane(0)};
  spec.seed = 5;
  auto records = GenerateRecords(spec, 5000);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->width(), 12u);
  EXPECT_EQ(records->data.size(), 60000u);
}

TEST(RecordsTest, InvalidSpecsRejected) {
  RecordSpec spec;
  EXPECT_FALSE(GenerateRecords(spec, 10).ok());  // no lanes
  spec.lanes.assign(9, NoisyLane(0));            // 72 bytes > 64
  EXPECT_FALSE(GenerateRecords(spec, 10).ok());
  spec.lanes.assign(2, NoisyLane(0));
  spec.lanes[1].noise_bytes = 9;  // invalid lane params propagate
  EXPECT_FALSE(GenerateRecords(spec, 10).ok());
}

}  // namespace
}  // namespace isobar
