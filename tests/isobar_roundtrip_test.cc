#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/isobar.h"
#include "datagen/registry.h"
#include "util/random.h"

namespace isobar {
namespace {

// ---------------------------------------------------------------------------
// Round trip over dataset profiles × preference × codec arm.

struct PipelineCase {
  const char* dataset;
  Preference preference;
  // kStored sentinel -> let EUPA choose between zlib and bzip2.
  CodecId forced_codec;
  bool force = false;
};

class IsobarDatasetRoundTripTest
    : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(IsobarDatasetRoundTripTest, CompressDecompressIsIdentity) {
  const PipelineCase& param = GetParam();
  auto spec = FindDatasetSpec(param.dataset);
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 200000);
  ASSERT_TRUE(dataset.ok());

  CompressOptions options;
  options.eupa.preference = param.preference;
  options.eupa.sample_elements = 8192;
  options.chunk_elements = 75000;  // several chunks per run
  if (param.force) {
    options.eupa.forced_codec = param.forced_codec;
  }
  const IsobarCompressor compressor(options);

  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width(), &stats);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ(stats.input_bytes, dataset->data.size());
  EXPECT_EQ(stats.output_bytes, compressed->size());

  DecompressionStats dstats;
  auto restored =
      IsobarCompressor::Decompress(*compressed, DecompressOptions{}, &dstats);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, dataset->data);
  EXPECT_EQ(dstats.output_bytes, dataset->data.size());
}

std::string PipelineCaseName(
    const ::testing::TestParamInfo<PipelineCase>& info) {
  std::string name = info.param.dataset;
  name += info.param.preference == Preference::kRatio ? "_ratio" : "_speed";
  if (info.param.force) {
    name += "_";
    name += CodecIdToString(info.param.forced_codec);
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndPreferences, IsobarDatasetRoundTripTest,
    ::testing::Values(
        // Improvable profiles under both preferences, EUPA free choice.
        PipelineCase{"gts_phi_l", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"gts_phi_l", Preference::kRatio, CodecId::kStored},
        PipelineCase{"xgc_igid", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"xgc_iphase", Preference::kRatio, CodecId::kStored},
        PipelineCase{"s3d_temp", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"s3d_vmag", Preference::kRatio, CodecId::kStored},
        PipelineCase{"flash_velx", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"flash_gamc", Preference::kRatio, CodecId::kStored},
        PipelineCase{"msg_sweep3d", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"num_comet", Preference::kRatio, CodecId::kStored},
        PipelineCase{"obs_info", Preference::kSpeed, CodecId::kStored},
        // Non-improvable profiles (undetermined path).
        PipelineCase{"msg_bt", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"msg_sppm", Preference::kRatio, CodecId::kStored},
        PipelineCase{"num_plasma", Preference::kRatio, CodecId::kStored},
        PipelineCase{"obs_error", Preference::kSpeed, CodecId::kStored},
        PipelineCase{"obs_spitzer", Preference::kSpeed, CodecId::kStored},
        // Forced solver arms, including the homegrown codecs.
        PipelineCase{"gts_chkp_zeon", Preference::kSpeed, CodecId::kZlib, true},
        PipelineCase{"gts_chkp_zion", Preference::kRatio, CodecId::kBzip2, true},
        PipelineCase{"flash_vely", Preference::kSpeed, CodecId::kRle, true},
        PipelineCase{"msg_lu", Preference::kSpeed, CodecId::kLzss, true},
        PipelineCase{"msg_sp", Preference::kSpeed, CodecId::kStored, true},
        PipelineCase{"num_brain", Preference::kRatio, CodecId::kZlib, true},
        PipelineCase{"num_control", Preference::kSpeed, CodecId::kZlib, true},
        PipelineCase{"obs_temp", Preference::kRatio, CodecId::kBzip2, true}),
    PipelineCaseName);

// ---------------------------------------------------------------------------
// Round trip over element widths and chunk geometries.

class IsobarWidthRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(IsobarWidthRoundTripTest, ArbitraryWidthRoundTrips) {
  const auto [width, chunk_elements] = GetParam();
  // Mixed structure: half the columns noise, half skewed.
  Bytes data;
  Xoshiro256 rng(width * 1000 + chunk_elements);
  const size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < width; ++j) {
      if (j < width / 2) {
        data.push_back(static_cast<uint8_t>(rng.Next()));
      } else {
        data.push_back(static_cast<uint8_t>(j));
      }
    }
  }

  CompressOptions options;
  options.chunk_elements = chunk_elements;
  options.eupa.sample_elements = 4096;
  options.eupa.forced_codec = CodecId::kZlib;  // keep the sweep fast
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(data, width);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, data);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndChunks, IsobarWidthRoundTripTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 4, 8, 12, 16, 64),
                       ::testing::Values<uint64_t>(7001, 50000, 1000000)));

// ---------------------------------------------------------------------------
// Degenerate inputs.

TEST(IsobarRoundTripTest, EmptyInput) {
  const IsobarCompressor compressor;
  auto compressed = compressor.Compress({}, 8);
  ASSERT_TRUE(compressed.ok());
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(IsobarRoundTripTest, SingleElement) {
  Bytes data = {1, 2, 3, 4, 5, 6, 7, 8};
  const IsobarCompressor compressor;
  auto compressed = compressor.Compress(data, 8);
  ASSERT_TRUE(compressed.ok());
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, data);
}

TEST(IsobarRoundTripTest, ChunkBoundaryExactMultiple) {
  auto spec = FindDatasetSpec("flash_velx");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 60000);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = 20000;  // exactly 3 chunks
  options.eupa.forced_codec = CodecId::kZlib;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(stats.chunk_count, 3u);
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dataset->data);
}

TEST(IsobarRoundTripTest, InvalidInputsRejected) {
  const IsobarCompressor compressor;
  EXPECT_FALSE(compressor.Compress(Bytes(15, 0), 8).ok());
  EXPECT_FALSE(compressor.Compress(Bytes(16, 0), 0).ok());
  EXPECT_FALSE(compressor.Compress(Bytes(16, 0), 65).ok());
  CompressOptions zero_chunk;
  zero_chunk.chunk_elements = 0;
  EXPECT_FALSE(IsobarCompressor(zero_chunk).Compress(Bytes(16, 0), 8).ok());
}

TEST(IsobarRoundTripTest, PureNoiseWithStoredFallbackDoesNotExpandPayload) {
  // All-random data, stored codec: the solver cannot shrink anything, so
  // every chunk must take the stored-raw fallback and the container
  // overhead stays at headers only.
  Bytes data;
  Xoshiro256 rng(1234);
  const size_t n = 100000;
  for (size_t i = 0; i < n * 8; ++i) data.push_back(static_cast<uint8_t>(rng.Next()));
  CompressOptions options;
  options.eupa.forced_codec = CodecId::kStored;
  options.eupa.forced_linearization = Linearization::kRow;
  options.chunk_elements = 25000;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto compressed = compressor.Compress(data, 8, &stats);
  ASSERT_TRUE(compressed.ok());
  const size_t overhead = container::kHeaderSize +
                          stats.chunk_count * container::kChunkHeaderSize +
                          container::FooterBytes(stats.chunk_count);
  EXPECT_EQ(compressed->size(), data.size() + overhead);
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, data);
}

}  // namespace
}  // namespace isobar
