#include <gtest/gtest.h>

#include "compressors/registry.h"
#include "core/chunk_codec.h"
#include "util/random.h"

namespace isobar {
namespace {

// width 4: columns 0-1 noise, 2 skewed, 3 constant.
Bytes MixedChunk(size_t n, uint64_t seed) {
  Bytes data;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>(rng.NextBounded(4)));
    data.push_back(0x99);
  }
  return data;
}

const Codec& Zlib() { return **GetCodec(CodecId::kZlib); }

TEST(ChunkCodecTest, EncodeDecodeRoundTrip) {
  const Bytes chunk = MixedChunk(50000, 1);
  const Analyzer analyzer;
  Bytes record;
  CompressionStats stats;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kRow, chunk, 4,
                          &record, &stats)
                  .ok());
  EXPECT_EQ(stats.chunk_count, 1u);
  EXPECT_EQ(stats.improvable_chunks, 1u);
  EXPECT_NEAR(stats.mean_htc_fraction, 0.5, 1e-9);
  EXPECT_LT(record.size(), chunk.size());  // 2 of 4 columns compress away

  size_t offset = 0;
  Bytes out;
  ASSERT_TRUE(DecodeChunk(record, &offset, Zlib(), Linearization::kRow, 4,
                          /*max_elements=*/50000, /*verify=*/true, &out)
                  .ok());
  EXPECT_EQ(offset, record.size());
  EXPECT_EQ(out, chunk);
}

TEST(ChunkCodecTest, StatsAccumulateAcrossChunks) {
  const Analyzer analyzer;
  CompressionStats stats;
  Bytes record;
  // One improvable chunk (htc 0.5) and one undetermined (htc 0 with an
  // all-compressible verdict -> constant data).
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kRow,
                          MixedChunk(20000, 2), 4, &record, &stats)
                  .ok());
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kRow,
                          Bytes(20000 * 4, 0x11), 4, &record, &stats)
                  .ok());
  EXPECT_EQ(stats.chunk_count, 2u);
  EXPECT_EQ(stats.improvable_chunks, 1u);
  EXPECT_TRUE(stats.improvable);
  EXPECT_NEAR(stats.mean_htc_fraction, 0.25, 1e-9);  // mean of 0.5 and 0
  EXPECT_GT(stats.analysis_seconds, 0.0);
  EXPECT_GT(stats.codec_seconds, 0.0);
}

TEST(ChunkCodecTest, NullStatsAccepted) {
  const Analyzer analyzer;
  Bytes record;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kColumn,
                          MixedChunk(5000, 3), 4, &record, nullptr)
                  .ok());
}

TEST(ChunkCodecTest, SequentialRecordsDecodeInOrder) {
  const Analyzer analyzer;
  const Bytes chunk_a = MixedChunk(10000, 4);
  const Bytes chunk_b = MixedChunk(7000, 5);
  Bytes records;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kColumn, chunk_a,
                          4, &records, nullptr)
                  .ok());
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kColumn, chunk_b,
                          4, &records, nullptr)
                  .ok());

  size_t offset = 0;
  Bytes out;
  ASSERT_TRUE(DecodeChunk(records, &offset, Zlib(), Linearization::kColumn,
                          4, 10000, true, &out)
                  .ok());
  ASSERT_TRUE(DecodeChunk(records, &offset, Zlib(), Linearization::kColumn,
                          4, 10000, true, &out)
                  .ok());
  EXPECT_EQ(offset, records.size());
  Bytes expected = chunk_a;
  expected.insert(expected.end(), chunk_b.begin(), chunk_b.end());
  EXPECT_EQ(out, expected);
}

TEST(ChunkCodecTest, ElementCountAboveBoundRejected) {
  const Analyzer analyzer;
  const Bytes chunk = MixedChunk(10000, 6);
  Bytes record;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kRow, chunk, 4,
                          &record, nullptr)
                  .ok());
  size_t offset = 0;
  Bytes out;
  auto status = DecodeChunk(record, &offset, Zlib(), Linearization::kRow, 4,
                            /*max_elements=*/9999, true, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(ChunkCodecTest, WrongLinearizationFailsChecksum) {
  // Decoding with the wrong linearization scatters bytes to the wrong
  // positions; the chunk CRC must catch it.
  const Analyzer analyzer;
  const Bytes chunk = MixedChunk(20000, 7);
  Bytes record;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kColumn, chunk, 4,
                          &record, nullptr)
                  .ok());
  size_t offset = 0;
  Bytes out;
  auto status = DecodeChunk(record, &offset, Zlib(), Linearization::kRow, 4,
                            20000, true, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(ChunkCodecTest, MergeChunkStatsWeightsByChunkCount) {
  CompressionStats total;
  total.chunk_count = 3;
  total.mean_htc_fraction = 0.4;
  CompressionStats chunk;
  chunk.chunk_count = 1;
  chunk.mean_htc_fraction = 0.2;
  MergeChunkStats(chunk, &total);
  EXPECT_EQ(total.chunk_count, 4u);
  EXPECT_NEAR(total.mean_htc_fraction, 0.35, 1e-12);

  // A worker's multi-chunk subtotal merges by weight — not as a single
  // observation, which would skew the pipeline mean toward late workers.
  CompressionStats left;
  left.chunk_count = 2;
  left.mean_htc_fraction = 0.3;
  CompressionStats right;
  right.chunk_count = 6;
  right.mean_htc_fraction = 0.1;
  MergeChunkStats(right, &left);
  EXPECT_EQ(left.chunk_count, 8u);
  EXPECT_NEAR(left.mean_htc_fraction, 0.15, 1e-12);  // (2*0.3 + 6*0.1) / 8

  // Empty contributions change nothing.
  const CompressionStats empty;
  MergeChunkStats(empty, &left);
  EXPECT_EQ(left.chunk_count, 8u);
  EXPECT_NEAR(left.mean_htc_fraction, 0.15, 1e-12);
}

TEST(ChunkCodecTest, WrongCodecFailsCleanly) {
  const Analyzer analyzer;
  const Bytes chunk = MixedChunk(20000, 8);
  Bytes record;
  ASSERT_TRUE(EncodeChunk(analyzer, Zlib(), Linearization::kRow, chunk, 4,
                          &record, nullptr)
                  .ok());
  size_t offset = 0;
  Bytes out;
  const Codec& bzip2 = **GetCodec(CodecId::kBzip2);
  auto status =
      DecodeChunk(record, &offset, bzip2, Linearization::kRow, 4, 20000,
                  true, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace isobar
