#include <gtest/gtest.h>

#include <string>

#include "io/file_io.h"
#include "util/random.h"

namespace isobar {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FileIoTest, WriteThenReadRoundTrips) {
  const std::string path = TempPath("file_io_roundtrip.bin");
  Bytes data(100000);
  Xoshiro256 rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE(WriteBytesToFile(path, data).ok());
  auto read = ReadFileToBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(FileIoTest, EmptyFileReadsEmpty) {
  const std::string path = TempPath("file_io_empty.bin");
  ASSERT_TRUE(WriteBytesToFile(path, {}).ok());
  auto read = ReadFileToBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(FileIoTest, MissingFileIsIOError) {
  auto read = ReadFileToBytes(TempPath("does_not_exist.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(FileIoTest, UnwritablePathIsIOError) {
  EXPECT_EQ(WriteBytesToFile("/nonexistent_dir_xyz/file.bin", Bytes(4, 0))
                .code(),
            StatusCode::kIOError);
}

TEST(FileIoTest, OverwriteTruncates) {
  const std::string path = TempPath("file_io_trunc.bin");
  ASSERT_TRUE(WriteBytesToFile(path, Bytes(1000, 0xAA)).ok());
  ASSERT_TRUE(WriteBytesToFile(path, Bytes(10, 0xBB)).ok());
  auto read = ReadFileToBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Bytes(10, 0xBB));
}

#if defined(__linux__)
TEST(FileIoTest, NonSeekableInputIsStreamed) {
  // /proc files report size 0 / non-seekable semantics; reading must fall
  // back to streaming rather than trusting tellg().
  auto read = ReadFileToBytes("/proc/self/cmdline");
  ASSERT_TRUE(read.ok());
  EXPECT_GT(read->size(), 0u);
}
#endif

}  // namespace
}  // namespace isobar
