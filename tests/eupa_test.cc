#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/eupa_selector.h"
#include "datagen/registry.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes NoisyStructured(size_t elements, uint64_t seed) {
  // width 8: low 6 bytes noise, bytes 6-7 structured.
  Bytes data;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < elements; ++i) {
    for (int b = 0; b < 6; ++b) data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>((i / 64) % 16));
    data.push_back(0x3F);
  }
  return data;
}

TEST(EupaTest, DeterministicAcrossRuns) {
  const Bytes data = NoisyStructured(200000, 1);
  EupaOptions options;
  options.preference = Preference::kRatio;
  const EupaSelector selector(options);
  auto first = selector.Select(data, 8, 0xC0);
  auto second = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->codec, second->codec);
  EXPECT_EQ(first->linearization, second->linearization);
}

TEST(EupaTest, EvaluatesAllCandidateCombinations) {
  const Bytes data = NoisyStructured(100000, 2);
  const EupaSelector selector;
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  // 2 codecs × 2 linearizations.
  EXPECT_EQ(decision->evaluations.size(), 4u);
  for (const auto& eval : decision->evaluations) {
    EXPECT_GT(eval.ratio, 0.0);
    EXPECT_GT(eval.throughput_mbps, 0.0);
  }
}

TEST(EupaTest, RatioPreferencePicksBestMeasuredRatio) {
  const Bytes data = NoisyStructured(200000, 3);
  EupaOptions options;
  options.preference = Preference::kRatio;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  double best = 0.0;
  for (const auto& eval : decision->evaluations) best = std::max(best, eval.ratio);
  for (const auto& eval : decision->evaluations) {
    if (eval.codec == decision->codec &&
        eval.linearization == decision->linearization) {
      EXPECT_DOUBLE_EQ(eval.ratio, best);
    }
  }
}

TEST(EupaTest, SpeedPreferenceRespectsRatioFloor) {
  // With an unreachable ratio floor the selector must fall back to the
  // best-ratio candidate instead of failing.
  const Bytes data = NoisyStructured(100000, 4);
  EupaOptions options;
  options.preference = Preference::kSpeed;
  options.min_ratio = 1e9;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  double best = 0.0;
  for (const auto& eval : decision->evaluations) best = std::max(best, eval.ratio);
  for (const auto& eval : decision->evaluations) {
    if (eval.codec == decision->codec &&
        eval.linearization == decision->linearization) {
      EXPECT_DOUBLE_EQ(eval.ratio, best);
    }
  }
}

TEST(EupaTest, ForcedCodecIsHonored) {
  const Bytes data = NoisyStructured(50000, 5);
  EupaOptions options;
  options.forced_codec = CodecId::kRle;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->codec, CodecId::kRle);
  // Linearization was still measured: both arms evaluated with RLE.
  EXPECT_EQ(decision->evaluations.size(), 2u);
}

TEST(EupaTest, FullyForcedPipelineSkipsMeasurement) {
  const Bytes data = NoisyStructured(50000, 6);
  EupaOptions options;
  options.forced_codec = CodecId::kBzip2;
  options.forced_linearization = Linearization::kColumn;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->codec, CodecId::kBzip2);
  EXPECT_EQ(decision->linearization, Linearization::kColumn);
  EXPECT_TRUE(decision->evaluations.empty());
}

TEST(EupaTest, CustomCandidateListUsed) {
  const Bytes data = NoisyStructured(50000, 7);
  EupaOptions options;
  options.candidate_codecs = {CodecId::kRle, CodecId::kLzss};
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->codec == CodecId::kRle ||
              decision->codec == CodecId::kLzss);
  EXPECT_EQ(decision->evaluations.size(), 4u);
}

TEST(EupaTest, InputValidation) {
  const EupaSelector selector;
  EXPECT_FALSE(selector.Select({}, 8, 0xFF).ok());
  EXPECT_FALSE(selector.Select(Bytes(15, 0), 8, 0xFF).ok());
  EXPECT_FALSE(selector.Select(Bytes(16, 0), 0, 0xFF).ok());
  // Zero mask: there is nothing to measure.
  EXPECT_FALSE(selector.Select(Bytes(800, 0), 8, 0).ok());
  EupaOptions no_codecs;
  no_codecs.candidate_codecs.clear();
  EXPECT_FALSE(EupaSelector(no_codecs).Select(Bytes(800, 1), 8, 0xFF).ok());
}

TEST(EupaTest, TrainingSampleDrawsExactBudget) {
  const Bytes data = NoisyStructured(10000, 3);
  EupaOptions options;
  // 1000 % 3 != 0: the division remainder must be spread over runs, not
  // floored away (which starved the probe by up to runs-1 elements).
  options.sample_elements = 1000;
  options.sample_runs = 3;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 1000u * 8);

  options.sample_runs = 7;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 1000u * 8);

  // More runs than wanted elements: still exact and element-aligned.
  options.sample_elements = 5;
  options.sample_runs = 8;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 5u * 8);

  // Budget at or above the input: the whole input, verbatim.
  options.sample_elements = 20000;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), data.size());
}

TEST(EupaTest, SampleSmallerThanDataStillDecides) {
  const Bytes data = NoisyStructured(500000, 8);
  EupaOptions options;
  options.sample_elements = 1024;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->evaluations.size(), 4u);
}

TEST(EupaTest, ChoosesColumnWhenItClearlyWins) {
  // Construct data where column linearization is dramatically better: two
  // compressible columns whose values are constant per column but differ
  // from each other. Row linearization yields an alternating 2-byte
  // pattern; column linearization yields two long constant runs. Both are
  // compressible, but for RLE the column layout is strictly better.
  Bytes data;
  for (size_t i = 0; i < 100000; ++i) {
    data.push_back(0x01);
    data.push_back(0x02);
  }
  EupaOptions options;
  options.preference = Preference::kRatio;
  options.candidate_codecs = {CodecId::kRle};
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 2, 0b11);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->linearization, Linearization::kColumn);
}

}  // namespace
}  // namespace isobar
