#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/eupa_selector.h"
#include "datagen/registry.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes NoisyStructured(size_t elements, uint64_t seed) {
  // width 8: low 6 bytes noise, bytes 6-7 structured.
  Bytes data;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < elements; ++i) {
    for (int b = 0; b < 6; ++b) data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>((i / 64) % 16));
    data.push_back(0x3F);
  }
  return data;
}

TEST(EupaTest, DeterministicAcrossRuns) {
  const Bytes data = NoisyStructured(200000, 1);
  EupaOptions options;
  options.preference = Preference::kRatio;
  const EupaSelector selector(options);
  auto first = selector.Select(data, 8, 0xC0);
  auto second = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->codec, second->codec);
  EXPECT_EQ(first->linearization, second->linearization);
}

TEST(EupaTest, EvaluatesAllCandidateCombinations) {
  const Bytes data = NoisyStructured(100000, 2);
  const EupaSelector selector;
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  // 3 default codecs × 2 linearizations.
  EXPECT_EQ(decision->evaluations.size(), 6u);
  for (const auto& eval : decision->evaluations) {
    EXPECT_GT(eval.ratio, 0.0);
    EXPECT_GT(eval.throughput_mbps, 0.0);
  }
}

TEST(EupaTest, RatioPreferencePicksBestMeasuredRatio) {
  const Bytes data = NoisyStructured(200000, 3);
  EupaOptions options;
  options.preference = Preference::kRatio;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  double best = 0.0;
  for (const auto& eval : decision->evaluations) best = std::max(best, eval.ratio);
  for (const auto& eval : decision->evaluations) {
    if (eval.codec == decision->codec &&
        eval.linearization == decision->linearization) {
      EXPECT_DOUBLE_EQ(eval.ratio, best);
    }
  }
}

TEST(EupaTest, SpeedPreferenceRespectsRatioFloor) {
  // With an unreachable ratio floor the selector must fall back to the
  // best-ratio candidate instead of failing.
  const Bytes data = NoisyStructured(100000, 4);
  EupaOptions options;
  options.preference = Preference::kSpeed;
  options.min_ratio = 1e9;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  double best = 0.0;
  for (const auto& eval : decision->evaluations) best = std::max(best, eval.ratio);
  for (const auto& eval : decision->evaluations) {
    if (eval.codec == decision->codec &&
        eval.linearization == decision->linearization) {
      EXPECT_DOUBLE_EQ(eval.ratio, best);
    }
  }
}

TEST(EupaTest, ForcedCodecIsHonored) {
  const Bytes data = NoisyStructured(50000, 5);
  EupaOptions options;
  options.forced_codec = CodecId::kRle;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->codec, CodecId::kRle);
  // Linearization was still measured: both arms evaluated with RLE.
  EXPECT_EQ(decision->evaluations.size(), 2u);
}

TEST(EupaTest, FullyForcedPipelineSkipsMeasurement) {
  const Bytes data = NoisyStructured(50000, 6);
  EupaOptions options;
  options.forced_codec = CodecId::kBzip2;
  options.forced_linearization = Linearization::kColumn;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->codec, CodecId::kBzip2);
  EXPECT_EQ(decision->linearization, Linearization::kColumn);
  EXPECT_TRUE(decision->evaluations.empty());
}

TEST(EupaTest, CustomCandidateListUsed) {
  const Bytes data = NoisyStructured(50000, 7);
  EupaOptions options;
  options.candidate_codecs = {CodecId::kRle, CodecId::kLzss};
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->codec == CodecId::kRle ||
              decision->codec == CodecId::kLzss);
  EXPECT_EQ(decision->evaluations.size(), 4u);
}

TEST(EupaTest, InputValidation) {
  const EupaSelector selector;
  EXPECT_FALSE(selector.Select({}, 8, 0xFF).ok());
  EXPECT_FALSE(selector.Select(Bytes(15, 0), 8, 0xFF).ok());
  EXPECT_FALSE(selector.Select(Bytes(16, 0), 0, 0xFF).ok());
  // Zero mask: there is nothing to measure.
  EXPECT_FALSE(selector.Select(Bytes(800, 0), 8, 0).ok());
  EupaOptions no_codecs;
  no_codecs.candidate_codecs.clear();
  EXPECT_FALSE(EupaSelector(no_codecs).Select(Bytes(800, 1), 8, 0xFF).ok());
}

TEST(EupaTest, TrainingSampleDrawsExactBudget) {
  const Bytes data = NoisyStructured(10000, 3);
  EupaOptions options;
  // 1000 % 3 != 0: the division remainder must be spread over runs, not
  // floored away (which starved the probe by up to runs-1 elements).
  options.sample_elements = 1000;
  options.sample_runs = 3;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 1000u * 8);

  options.sample_runs = 7;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 1000u * 8);

  // More runs than wanted elements: still exact and element-aligned.
  options.sample_elements = 5;
  options.sample_runs = 8;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), 5u * 8);

  // Budget at or above the input: the whole input, verbatim.
  options.sample_elements = 20000;
  EXPECT_EQ(DrawTrainingSample(data, 8, options).size(), data.size());
}

TEST(EupaTest, SampleSmallerThanDataStillDecides) {
  const Bytes data = NoisyStructured(500000, 8);
  EupaOptions options;
  options.sample_elements = 1024;
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 8, 0xC0);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->evaluations.size(), 6u);
}

TEST(EupaTest, RejectsZeroSampleBudget) {
  const Bytes data = NoisyStructured(1000, 9);
  EupaOptions options;
  options.sample_elements = 0;
  EXPECT_FALSE(EupaSelector(options).Select(data, 8, 0xFF).ok());
  options.sample_elements = 1024;
  options.sample_runs = 0;
  EXPECT_FALSE(EupaSelector(options).Select(data, 8, 0xFF).ok());
}

// Candidate list covering every solver the estimator models.
std::vector<CodecId> AllSolvers() {
  return {CodecId::kZlib,    CodecId::kBzip2, CodecId::kRle,
          CodecId::kLzss,    CodecId::kHuffman, CodecId::kBwt,
          CodecId::kLzans};
}

EupaDecision SelectOrDie(const Bytes& data, size_t width, uint64_t mask,
                         Preference pref, double margin,
                         std::vector<CodecId> codecs) {
  EupaOptions options;
  options.preference = pref;
  options.prune_margin = margin;
  options.candidate_codecs = std::move(codecs);
  auto decision = EupaSelector(options).Select(data, width, mask);
  EXPECT_TRUE(decision.ok()) << decision.status().message();
  return *decision;
}

// The gate must never flip a ratio-preference selection: compression
// ratios are bit-deterministic, so gated and exhaustive runs must land on
// the same (codec, linearization) on any input — including adversarial
// ones aimed at each individual signal.
TEST(EupaTest, GateMatchesExhaustiveOnAdversarialInputs) {
  std::vector<std::pair<Bytes, size_t>> inputs;
  // All noise: every predictor near 1, nothing clearly wins.
  Bytes noise;
  Xoshiro256 rng(42);
  for (size_t i = 0; i < 131072; ++i) {
    noise.push_back(static_cast<uint8_t>(rng.Next()));
  }
  inputs.emplace_back(std::move(noise), 8);
  // All constant: the single-symbol entropy special case.
  inputs.emplace_back(Bytes(131072, 0x55), 8);
  // Alternating columns: row and column layouts diverge maximally.
  Bytes alternating;
  for (size_t i = 0; i < 65536; ++i) {
    alternating.push_back(0x01);
    alternating.push_back(0x02);
  }
  inputs.emplace_back(std::move(alternating), 2);

  for (const auto& [data, width] : inputs) {
    const uint64_t mask = width == 2 ? 0b11 : 0xFF;
    const EupaDecision exhaustive =
        SelectOrDie(data, width, mask, Preference::kRatio, 0.0, AllSolvers());
    const EupaDecision gated =
        SelectOrDie(data, width, mask, Preference::kRatio, 0.25, AllSolvers());
    EXPECT_EQ(gated.codec, exhaustive.codec);
    EXPECT_EQ(gated.linearization, exhaustive.linearization);
    // Exhaustive mode leaves the estimator fields untouched.
    for (const auto& eval : exhaustive.evaluations) {
      EXPECT_FALSE(eval.pruned);
      EXPECT_DOUBLE_EQ(eval.predicted_ratio, 0.0);
    }
    // Gated mode predicts every candidate and measures the survivors
    // identically to the exhaustive run.
    for (size_t i = 0; i < gated.evaluations.size(); ++i) {
      EXPECT_GT(gated.evaluations[i].predicted_ratio, 0.0);
      if (!gated.evaluations[i].pruned) {
        EXPECT_DOUBLE_EQ(gated.evaluations[i].ratio,
                         exhaustive.evaluations[i].ratio);
      }
    }
  }
}

TEST(EupaTest, GateMatchesExhaustiveAcrossDatasetProfiles) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto dataset = GenerateDataset(spec, 40000);
    ASSERT_TRUE(dataset.ok()) << spec.name;
    const uint64_t mask = (uint64_t{1} << dataset->width()) - 1;
    const EupaDecision exhaustive =
        SelectOrDie(dataset->data, dataset->width(), mask, Preference::kRatio,
                    0.0, AllSolvers());
    const EupaDecision gated =
        SelectOrDie(dataset->data, dataset->width(), mask, Preference::kRatio,
                    0.25, AllSolvers());
    EXPECT_EQ(gated.codec, exhaustive.codec) << spec.name;
    EXPECT_EQ(gated.linearization, exhaustive.linearization) << spec.name;
  }
}

TEST(EupaTest, GatePrunesTrialsOnMixedWorkload) {
  // Structured columns under a ratio preference: once a strong candidate
  // is measured, weak predictors (RLE/Huffman on noisy layouts) must be
  // pruned without a trial, and the counters must record the split.
  const Bytes data = NoisyStructured(100000, 10);
  telemetry::SetEnabled(true);
  telemetry::Counter& run = telemetry::GetCounter("eupa.trials_run");
  telemetry::Counter& pruned = telemetry::GetCounter("eupa.trials_pruned");
  const uint64_t run_before = run.value();
  const uint64_t pruned_before = pruned.value();
  const EupaDecision gated =
      SelectOrDie(data, 8, 0xC0, Preference::kRatio, 0.25, AllSolvers());
  telemetry::SetEnabled(false);

  size_t pruned_evals = 0;
  for (const auto& eval : gated.evaluations) pruned_evals += eval.pruned ? 1 : 0;
  EXPECT_GT(pruned_evals, 0u);
  EXPECT_LT(pruned_evals, gated.evaluations.size());
  if (telemetry::kCompiledIn) {  // counters are inert with telemetry off
    EXPECT_EQ(pruned.value() - pruned_before, pruned_evals);
    EXPECT_EQ(run.value() - run_before,
              gated.evaluations.size() - pruned_evals);
  }

  // And the saved trials must not change the outcome.
  const EupaDecision exhaustive =
      SelectOrDie(data, 8, 0xC0, Preference::kRatio, 0.0, AllSolvers());
  EXPECT_EQ(gated.codec, exhaustive.codec);
  EXPECT_EQ(gated.linearization, exhaustive.linearization);
}

TEST(EupaTest, SpeedPreferenceDefaultFloorNeverPrunes) {
  // At the default min_ratio of 1.0 every estimator lower bound clears the
  // floor, so a speed-preference gate must keep the full trial matrix: the
  // band rule depends on measured throughputs the estimator cannot rank.
  const Bytes data = NoisyStructured(100000, 11);
  const EupaDecision gated =
      SelectOrDie(data, 8, 0xC0, Preference::kSpeed, 0.25, AllSolvers());
  for (const auto& eval : gated.evaluations) {
    EXPECT_FALSE(eval.pruned);
    EXPECT_GT(eval.ratio, 0.0);
  }
}

TEST(EupaTest, ChoosesColumnWhenItClearlyWins) {
  // Construct data where column linearization is dramatically better: two
  // compressible columns whose values are constant per column but differ
  // from each other. Row linearization yields an alternating 2-byte
  // pattern; column linearization yields two long constant runs. Both are
  // compressible, but for RLE the column layout is strictly better.
  Bytes data;
  for (size_t i = 0; i < 100000; ++i) {
    data.push_back(0x01);
    data.push_back(0x02);
  }
  EupaOptions options;
  options.preference = Preference::kRatio;
  options.candidate_codecs = {CodecId::kRle};
  const EupaSelector selector(options);
  auto decision = selector.Select(data, 2, 0b11);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->linearization, Linearization::kColumn);
}

}  // namespace
}  // namespace isobar
