// Randomized robustness suites: deterministic seeded "fuzzing" of the
// container decoder and the standalone codec decoders. The invariant
// under test is memory- and type-safety of every parse path: any mutation
// of a valid stream must yield either a clean Status (usually
// kCorruption) or a bit-exact reconstruction — never a crash, hang, or
// silently wrong output.
#include <gtest/gtest.h>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "fpc/fpc_codec.h"
#include "fpzip/fpzip_codec.h"
#include "pfor/pfor_codec.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes MakeContainer(Bytes* plaintext) {
  auto spec = FindDatasetSpec("s3d_vmag");
  auto dataset = GenerateDataset(**spec, 30000);
  *plaintext = dataset->data;
  CompressOptions options;
  options.chunk_elements = 10000;
  options.eupa.sample_elements = 2048;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width());
  return *compressed;
}

TEST(ContainerFuzzTest, SingleByteMutationsNeverCrashOrCorruptSilently) {
  Bytes plaintext;
  const Bytes container = MakeContainer(&plaintext);
  Xoshiro256 rng(2024);
  int ok_count = 0, corrupt_count = 0;
  for (int iteration = 0; iteration < 400; ++iteration) {
    Bytes mutated = container;
    const size_t pos = rng.NextBounded(mutated.size());
    const uint8_t flip = static_cast<uint8_t>(1u << rng.NextBounded(8));
    mutated[pos] ^= flip;

    auto result = IsobarCompressor::Decompress(mutated);
    if (result.ok()) {
      // A mutation may be semantically inert (deflate padding bits,
      // reserved header bytes) — then the output must still be exact.
      EXPECT_EQ(*result, plaintext) << "pos " << pos << " flip " << int(flip);
      ++ok_count;
    } else {
      ++corrupt_count;
    }
  }
  // The vast majority of payload bits are load-bearing.
  EXPECT_GT(corrupt_count, ok_count);
}

TEST(ContainerFuzzTest, MultiByteMutationsHandled) {
  Bytes plaintext;
  const Bytes container = MakeContainer(&plaintext);
  Xoshiro256 rng(77);
  for (int iteration = 0; iteration < 150; ++iteration) {
    Bytes mutated = container;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(16));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(rng.Next());
    }
    auto result = IsobarCompressor::Decompress(mutated);
    if (result.ok()) {
      EXPECT_EQ(*result, plaintext);
    }
  }
}

TEST(ContainerFuzzTest, RandomTruncationsHandled) {
  Bytes plaintext;
  const Bytes container = MakeContainer(&plaintext);
  Xoshiro256 rng(99);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const size_t cut = rng.NextBounded(container.size());
    ByteSpan prefix(container.data(), cut);
    auto result = IsobarCompressor::Decompress(prefix);
    EXPECT_FALSE(result.ok()) << "cut " << cut;
  }
}

TEST(ContainerFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(4242);
  for (int iteration = 0; iteration < 300; ++iteration) {
    Bytes garbage(rng.NextBounded(4096), 0);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    auto result = IsobarCompressor::Decompress(garbage);
    // Overwhelmingly rejected at the magic check; all that matters is a
    // clean Status.
    EXPECT_FALSE(result.ok());
  }
}

TEST(ContainerFuzzTest, GarbageWithValidMagicNeverCrashes) {
  Xoshiro256 rng(31415);
  for (int iteration = 0; iteration < 300; ++iteration) {
    Bytes garbage(container::kHeaderSize + rng.NextBounded(2048), 0);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    StoreLE32(garbage.data(), container::kMagic);
    StoreLE16(garbage.data() + 4, container::kVersion);
    auto result = IsobarCompressor::Decompress(garbage);
    (void)result;  // any Status is fine; absence of UB is the assertion
  }
}

// Salvage-mode invariants under mutation: a salvaging decode must never
// crash, and whenever it reports a clean run the output must be exact.
TEST(ContainerFuzzTest, SalvagePoliciesSurviveMutation) {
  Bytes plaintext;
  const Bytes container = MakeContainer(&plaintext);
  Xoshiro256 rng(555);
  for (int iteration = 0; iteration < 200; ++iteration) {
    Bytes mutated = container;
    // Alternate single bit flips with multi-byte smears.
    if (iteration % 2 == 0) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    } else {
      const int mutations = 2 + static_cast<int>(rng.NextBounded(8));
      for (int m = 0; m < mutations; ++m) {
        mutated[rng.NextBounded(mutated.size())] ^=
            static_cast<uint8_t>(rng.Next());
      }
    }
    for (ChunkErrorPolicy policy :
         {ChunkErrorPolicy::kSkip, ChunkErrorPolicy::kZeroFill}) {
      DecompressOptions options;
      options.on_chunk_error = policy;
      SalvageReport report;
      options.salvage_report = &report;
      auto result = IsobarCompressor::Decompress(mutated, options);
      // Container-header damage still fails the whole call.
      if (!result.ok()) continue;
      EXPECT_EQ(report.chunks_total, report.chunks_recovered +
                                         report.chunks_skipped +
                                         report.chunks_zero_filled);
      if (report.clean()) {
        EXPECT_EQ(*result, plaintext);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Standalone codec decoders under mutation.

template <typename Compress, typename Decompress>
void FuzzCodec(Compress compress, Decompress decompress, uint64_t seed) {
  Xoshiro256 rng(seed);
  // A structured plaintext: smooth-ish words.
  Bytes plaintext;
  for (int i = 0; i < 4000; ++i) {
    AppendLE64(plaintext, (1ull << 62) + static_cast<uint64_t>(i) * 977 +
                              (rng.Next() & 0xFFFF));
  }
  Bytes compressed;
  ASSERT_TRUE(compress(plaintext, &compressed));

  for (int iteration = 0; iteration < 200; ++iteration) {
    Bytes mutated = compressed;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    Bytes out;
    (void)decompress(mutated, plaintext.size(), &out);
    // Predictor/bit-packed codecs cannot detect every flip (they carry no
    // payload checksum; in the ISOBAR pipeline the container CRC covers
    // them) — the invariant here is bounded, crash-free behaviour.
  }
}

TEST(CodecFuzzTest, FpcDecoderIsRobust) {
  const FpcCodec codec;
  FuzzCodec(
      [&](ByteSpan in, Bytes* out) { return codec.Compress(in, out).ok(); },
      [&](ByteSpan in, size_t n, Bytes* out) {
        return codec.Decompress(in, n, out).ok();
      },
      1);
}

TEST(CodecFuzzTest, FpzipDecoderIsRobust) {
  const FpzipCodec codec(8);
  FuzzCodec(
      [&](ByteSpan in, Bytes* out) { return codec.Compress(in, out).ok(); },
      [&](ByteSpan in, size_t n, Bytes* out) {
        return codec.Decompress(in, n, out).ok();
      },
      2);
}

TEST(CodecFuzzTest, PforDecoderIsRobust) {
  const PforCodec codec(PforMode::kDelta);
  FuzzCodec(
      [&](ByteSpan in, Bytes* out) { return codec.Compress(in, out).ok(); },
      [&](ByteSpan in, size_t n, Bytes* out) {
        return codec.Decompress(in, n, out).ok();
      },
      3);
}

TEST(CodecFuzzTest, HomegrownSolversAreRobust) {
  for (CodecId id : {CodecId::kRle, CodecId::kLzss, CodecId::kHuffman,
                     CodecId::kBwt, CodecId::kLzans}) {
    auto codec = GetCodec(id);
    ASSERT_TRUE(codec.ok());
    FuzzCodec(
        [&](ByteSpan in, Bytes* out) {
          return (*codec)->Compress(in, out).ok();
        },
        [&](ByteSpan in, size_t n, Bytes* out) {
          return (*codec)->Decompress(in, n, out).ok();
        },
        static_cast<uint64_t>(id) + 10);
  }
}

// ---------------------------------------------------------------------------
// Generator-space property sweep: for ANY smooth-noisy parameterization,
// the analyzer must flag exactly the injected noise columns once the
// sample is large enough, and the pipeline must round-trip.

class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GeneratorPropertyTest, AnalyzerRecoversInjectedStructure) {
  const auto [noise_bytes, repeat] = GetParam();
  GeneratorParams params;
  params.noise_bytes = noise_bytes;
  params.repeat_fraction = repeat;
  auto dataset = GenerateArray(ElementType::kFloat64, params, 375000,
                               noise_bytes * 100 + 7);
  ASSERT_TRUE(dataset.ok());

  const Analyzer analyzer;
  auto analysis = analyzer.Analyze(dataset->bytes(), 8);
  ASSERT_TRUE(analysis.ok());
  const uint64_t noise_mask =
      noise_bytes >= 64 ? ~0ull : ((1ull << noise_bytes) - 1);
  EXPECT_EQ(analysis->compressible_mask, 0xFFull & ~noise_mask);

  const IsobarCompressor compressor;
  auto compressed = compressor.Compress(dataset->bytes(), 8);
  ASSERT_TRUE(compressed.ok());
  auto restored = IsobarCompressor::Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dataset->data);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseAndRepetition, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.0, 0.3, 0.6)));

}  // namespace
}  // namespace isobar
