// The seekable-container contract: v2 chunk-index footers, range- and
// column-addressable decode (DecompressRange / DecompressColumns),
// SeekToChunk, v1 fallback equivalence, damaged-footer fallback, and the
// tau-validation hardening at every pipeline entry point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/container.h"
#include "core/isobar.h"
#include "core/stream.h"
#include "datagen/registry.h"
#include "io/fault_injection.h"
#include "io/sink.h"
#include "telemetry/metrics.h"

namespace isobar {
namespace {

constexpr uint64_t kChunkElements = 10000;
constexpr uint64_t kTotalElements = 35000;  // Three full chunks + one short.

Bytes MakeContainer(Bytes* plaintext, size_t* width,
                    uint16_t container_version = container::kVersion,
                    CodecId forced_codec = CodecId::kZlib) {
  auto spec = FindDatasetSpec("s3d_vmag");
  EXPECT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, kTotalElements);
  EXPECT_TRUE(dataset.ok());
  *plaintext = dataset->data;
  *width = dataset->width();
  CompressOptions options;
  options.chunk_elements = kChunkElements;
  options.eupa.sample_elements = 2048;
  options.eupa.forced_codec = forced_codec;
  options.eupa.forced_linearization = Linearization::kColumn;
  options.container_version = container_version;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width());
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return *compressed;
}

// The expected result of DecompressRange: the matching slice of the
// original elements.
Bytes Slice(const Bytes& plaintext, size_t width, uint64_t first,
            uint64_t end) {
  return Bytes(plaintext.begin() + first * width,
               plaintext.begin() + end * width);
}

// The expected result of DecompressColumns: the requested byte-planes
// gathered from the original elements, ascending column order.
Bytes Planes(const Bytes& plaintext, size_t width, uint64_t column_mask) {
  const size_t n = plaintext.size() / width;
  Bytes out;
  for (size_t c = 0; c < width; ++c) {
    if ((column_mask & (1ull << c)) == 0) continue;
    for (size_t i = 0; i < n; ++i) out.push_back(plaintext[i * width + c]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Range reads.

TEST(RangeReadTest, RangeMatchesFullDecodeSlice) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);

  struct Window {
    uint64_t first, end;
  };
  for (const Window w : {Window{0, kTotalElements},      // everything
                         Window{0, kChunkElements},      // exactly chunk 0
                         Window{kChunkElements, 2 * kChunkElements},
                         Window{9995, 10005},            // chunk 0/1 boundary
                         Window{5000, 25000},            // three chunks
                         Window{30000, kTotalElements},  // the short tail
                         Window{17, 18},                 // one element
                         Window{42, 42}}) {              // empty
    auto range = IsobarCompressor::DecompressRange(container, w.first, w.end);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    EXPECT_EQ(*range, Slice(plaintext, width, w.first, w.end))
        << "[" << w.first << ", " << w.end << ")";
  }
}

TEST(RangeReadTest, RangeDecodesOnlyCoveringChunks) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  telemetry::SetEnabled(true);

  // A window strictly inside chunk 2: exactly one chunk record may be
  // payload-decoded.
  const auto before = telemetry::MetricsRegistry::Global().Snapshot();
  auto range = IsobarCompressor::DecompressRange(container, 21000, 24000);
  const auto after = telemetry::MetricsRegistry::Global().Snapshot();
  telemetry::SetEnabled(false);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, Slice(plaintext, width, 21000, 24000));

  const auto* decoded_before = before.FindCounter("pipeline.chunks_decoded");
  const auto* decoded_after = after.FindCounter("pipeline.chunks_decoded");
  ASSERT_NE(decoded_after, nullptr);
  const uint64_t delta =
      decoded_after->value - (decoded_before ? decoded_before->value : 0);
  EXPECT_EQ(delta, 1u);

  const auto* hits = after.FindCounter("pipeline.index_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_GE(hits->value, 1u);
}

TEST(RangeReadTest, RangeBoundsValidated) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  // Inverted and out-of-bounds windows are InvalidArgument, not damage.
  EXPECT_EQ(IsobarCompressor::DecompressRange(container, 10, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(IsobarCompressor::DecompressRange(container, 0, kTotalElements + 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RangeReadTest, V1ContainerDecodesViaSequentialFallback) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container =
      MakeContainer(&plaintext, &width, container::kVersionV1);

  // The legacy container still round-trips bit-identically...
  auto full = IsobarCompressor::Decompress(container);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, plaintext);

  // ...and serves ranges through the sequential chunk-header walk.
  auto range = IsobarCompressor::DecompressRange(container, 9995, 20005);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(*range, Slice(plaintext, width, 9995, 20005));
}

TEST(RangeReadTest, CorruptFooterFailsClosedAndFallsBackUnderSalvage) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  Bytes mutated = container;
  // Smash the footer trailer; every chunk record stays intact.
  SmashBytes(&mutated, mutated.size() - container::kFooterTrailerSize, 8, 0xA5);

  // kFail: a v2 container with a bad index is corrupt.
  EXPECT_EQ(IsobarCompressor::DecompressRange(mutated, 0, 100).status().code(),
            StatusCode::kCorruption);

  // Salvage: the sequential walk still serves the (undamaged) range.
  DecompressOptions salvage;
  salvage.on_chunk_error = ChunkErrorPolicy::kZeroFill;
  auto range = IsobarCompressor::DecompressRange(mutated, 5000, 15000, salvage);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(*range, Slice(plaintext, width, 5000, 15000));
}

TEST(RangeReadTest, DamagedChunkFailsOnlyCoveringRanges) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  // Locate chunk 1's record through the index and flip a payload byte.
  size_t offset = 0;
  auto header = container::ParseHeader(container, &offset);
  ASSERT_TRUE(header.ok());
  auto index = container::ParseFooter(container, *header);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_EQ(index->entries.size(), 4u);
  Bytes mutated = container;
  FlipBits(&mutated,
           static_cast<size_t>(index->entries[1].record_offset) +
               container::kChunkHeaderSize + 100,
           0x20);

  // A range entirely inside other chunks is untouched by the damage.
  auto clean = IsobarCompressor::DecompressRange(mutated, 0, kChunkElements);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(*clean, Slice(plaintext, width, 0, kChunkElements));

  // A covering range fails under kFail...
  auto failed = IsobarCompressor::DecompressRange(mutated, 9000, 12000);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCorruption);

  // ...and zero-fills exactly the damaged chunk's intersection under a
  // salvaging policy (kSkip would shift element addressing, so both
  // policies zero-fill here).
  for (ChunkErrorPolicy policy :
       {ChunkErrorPolicy::kSkip, ChunkErrorPolicy::kZeroFill}) {
    DecompressOptions options;
    options.on_chunk_error = policy;
    SalvageReport report;
    options.salvage_report = &report;
    auto range = IsobarCompressor::DecompressRange(mutated, 9000, 12000,
                                                   options);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    ASSERT_EQ(range->size(), 3000 * width);
    // [9000, 10000) from intact chunk 0; [10000, 12000) zero-filled.
    EXPECT_TRUE(std::equal(range->begin(), range->begin() + 1000 * width,
                           plaintext.begin() + 9000 * width));
    EXPECT_TRUE(std::all_of(range->begin() + 1000 * width, range->end(),
                            [](uint8_t b) { return b == 0; }));
    ASSERT_EQ(report.damaged.size(), 1u);
    EXPECT_EQ(report.damaged[0].chunk_index, 1u);
    // output_offset is relative to the range's first byte.
    EXPECT_EQ(report.damaged[0].output_offset, 1000 * width);
    EXPECT_EQ(report.damaged[0].lost_bytes, 2000 * width);
    EXPECT_EQ(report.bytes_lost, 2000 * width);
  }
}

// ---------------------------------------------------------------------------
// Column reads.

TEST(ColumnReadTest, ColumnsMatchFullDecodePlanes) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  ASSERT_EQ(width, 4u);
  for (uint64_t mask : {0x1ull, 0x8ull, 0x9ull, 0x3ull, 0xFull}) {
    auto planes = IsobarCompressor::DecompressColumns(container, mask);
    ASSERT_TRUE(planes.ok()) << planes.status().ToString();
    EXPECT_EQ(*planes, Planes(plaintext, width, mask)) << "mask " << mask;
  }
}

TEST(ColumnReadTest, StoredRawChunksServeColumnsWithoutSolver) {
  // Forced kStored: every chunk takes the stored-raw fallback, so column
  // reads must never invoke a solver decode.
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width,
                                        container::kVersion, CodecId::kStored);
  if (!telemetry::kCompiledIn) {
    auto planes = IsobarCompressor::DecompressColumns(container, 0x5);
    ASSERT_TRUE(planes.ok());
    EXPECT_EQ(*planes, Planes(plaintext, width, 0x5));
    return;
  }
  telemetry::SetEnabled(true);
  const auto before = telemetry::MetricsRegistry::Global().Snapshot();
  auto planes = IsobarCompressor::DecompressColumns(container, 0x5);
  const auto after = telemetry::MetricsRegistry::Global().Snapshot();
  telemetry::SetEnabled(false);
  ASSERT_TRUE(planes.ok()) << planes.status().ToString();
  EXPECT_EQ(*planes, Planes(plaintext, width, 0x5));

  const auto* raw_after = after.FindCounter("pipeline.column_planes_raw");
  const auto* raw_before = before.FindCounter("pipeline.column_planes_raw");
  ASSERT_NE(raw_after, nullptr);
  // Two planes per chunk, four chunks, all served raw.
  EXPECT_EQ(raw_after->value - (raw_before ? raw_before->value : 0), 8u);
}

TEST(ColumnReadTest, V1ContainerColumnsViaStridedGather) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container =
      MakeContainer(&plaintext, &width, container::kVersionV1);
  auto planes = IsobarCompressor::DecompressColumns(container, 0xB);
  ASSERT_TRUE(planes.ok()) << planes.status().ToString();
  EXPECT_EQ(*planes, Planes(plaintext, width, 0xB));
}

TEST(ColumnReadTest, MaskValidated) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  EXPECT_EQ(
      IsobarCompressor::DecompressColumns(container, 0).status().code(),
      StatusCode::kInvalidArgument);
  // Bit 8 names a column the 8-byte elements do not have.
  EXPECT_EQ(
      IsobarCompressor::DecompressColumns(container, 1ull << 8).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// SeekToChunk.

TEST(SeekToChunkTest, IndexSeekAgreesWithSequentialSkips) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);

  IsobarStreamReader seeker(container);
  ASSERT_TRUE(seeker.Init().ok());
  EXPECT_TRUE(seeker.has_chunk_index());
  ASSERT_TRUE(seeker.SeekToChunk(2).ok());

  IsobarStreamReader skipper(container);
  ASSERT_TRUE(skipper.Init().ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(*skipper.SkipChunk());

  // The index-based seek lands exactly where two SkipChunks land.
  EXPECT_EQ(seeker.chunks_read(), skipper.chunks_read());
  EXPECT_EQ(seeker.elements_read(), skipper.elements_read());
  Bytes from_seek, from_skip;
  ASSERT_TRUE(*seeker.NextChunk(&from_seek));
  ASSERT_TRUE(*skipper.NextChunk(&from_skip));
  EXPECT_EQ(from_seek, from_skip);
  EXPECT_TRUE(std::equal(from_seek.begin(), from_seek.end(),
                         plaintext.begin() + 2 * kChunkElements * width));

  // Backward seek, then the stream replays from the start.
  ASSERT_TRUE(seeker.SeekToChunk(0).ok());
  ASSERT_TRUE(*seeker.NextChunk(&from_seek));
  EXPECT_TRUE(std::equal(from_seek.begin(), from_seek.end(),
                         plaintext.begin()));

  // Seeking to the chunk count is the end of the stream; past it is an
  // error.
  ASSERT_TRUE(seeker.SeekToChunk(4).ok());
  Bytes chunk;
  auto more = seeker.NextChunk(&chunk);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_FALSE(*more);
  EXPECT_FALSE(seeker.SeekToChunk(5).ok());
}

TEST(SeekToChunkTest, V1FallbackSeeksViaSkipChunk) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container =
      MakeContainer(&plaintext, &width, container::kVersionV1);
  IsobarStreamReader reader(container);
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_FALSE(reader.has_chunk_index());
  ASSERT_TRUE(reader.SeekToChunk(3).ok());
  EXPECT_EQ(reader.chunks_read(), 3u);
  EXPECT_EQ(reader.elements_read(), 3 * kChunkElements);
  Bytes chunk;
  ASSERT_TRUE(*reader.NextChunk(&chunk));
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(),
                         plaintext.begin() + 3 * kChunkElements * width));
  // Backward: rewind + re-skip.
  ASSERT_TRUE(reader.SeekToChunk(1).ok());
  ASSERT_TRUE(*reader.NextChunk(&chunk));
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(),
                         plaintext.begin() + kChunkElements * width));
}

TEST(SeekToChunkTest, StreamedContainerSeeksThroughFooter) {
  // A streamed v2 container has sentinel header totals; the footer makes
  // it seekable anyway.
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, kTotalElements);
  ASSERT_TRUE(dataset.ok());
  CompressOptions options;
  options.chunk_elements = kChunkElements;
  options.eupa.sample_elements = 2048;
  options.num_threads = 1;
  Bytes container;
  MemorySink sink(&container);
  IsobarStreamWriter writer(options, dataset->width(), &sink);
  ASSERT_TRUE(writer.Append(dataset->bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());

  IsobarStreamReader reader(container);
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_TRUE(reader.has_chunk_index());
  EXPECT_EQ(reader.header().element_count, kTotalElements);
  EXPECT_EQ(reader.header().chunk_count, 4u);
  ASSERT_TRUE(reader.SeekToChunk(3).ok());
  Bytes chunk;
  ASSERT_TRUE(*reader.NextChunk(&chunk));
  EXPECT_TRUE(std::equal(
      chunk.begin(), chunk.end(),
      dataset->data.begin() + 3 * kChunkElements * dataset->width()));
  auto more = reader.NextChunk(&chunk);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_FALSE(*more);
}

// ---------------------------------------------------------------------------
// Tau validation hardening.

TEST(TauValidationTest, BatchCompressorRejectsInvalidTau) {
  const Bytes data(800, 0x42);
  for (double tau : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(), -1.42, 0.5,
                     300.0}) {
    CompressOptions options;
    options.analyzer.tau = tau;
    const IsobarCompressor compressor(options);
    auto result = compressor.Compress(data, 8);
    ASSERT_FALSE(result.ok()) << "tau " << tau;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundary values stay legal.
  for (double tau : {1.0, 1.42, 256.0}) {
    CompressOptions options;
    options.analyzer.tau = tau;
    const IsobarCompressor compressor(options);
    EXPECT_TRUE(compressor.Compress(data, 8).ok()) << "tau " << tau;
  }
}

TEST(TauValidationTest, StreamWriterRejectsInvalidTauAtConstruction) {
  Bytes buffer;
  MemorySink sink(&buffer);
  CompressOptions options;
  options.analyzer.tau = std::numeric_limits<double>::quiet_NaN();
  IsobarStreamWriter writer(options, 8, &sink);
  // The invalid tau never reaches the uint16 header cast: the writer is
  // unusable from the first call.
  const Bytes data(800, 0x42);
  auto status = writer.Append(data);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(buffer.empty());
}

TEST(TauValidationTest, UnsupportedContainerVersionRejected) {
  const Bytes data(800, 0x42);
  CompressOptions options;
  options.container_version = 7;
  const IsobarCompressor compressor(options);
  EXPECT_FALSE(compressor.Compress(data, 8).ok());
  Bytes buffer;
  MemorySink sink(&buffer);
  IsobarStreamWriter writer(options, 8, &sink);
  EXPECT_FALSE(writer.Append(data).ok());
}

// ---------------------------------------------------------------------------
// Batch/stream footer identity.

TEST(FooterIdentityTest, StreamedFooterMatchesBatchFooter) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes batch = MakeContainer(&plaintext, &width);

  CompressOptions options;
  options.chunk_elements = kChunkElements;
  options.eupa.sample_elements = 2048;
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kColumn;
  options.num_threads = 1;
  Bytes streamed;
  MemorySink sink(&streamed);
  IsobarStreamWriter writer(options, width, &sink);
  ASSERT_TRUE(writer.Append(plaintext).ok());
  ASSERT_TRUE(writer.Finish().ok());

  // The headers differ (sentinels vs counted totals) but every byte after
  // them — records and index footer — is identical.
  ASSERT_EQ(batch.size(), streamed.size());
  EXPECT_TRUE(std::equal(batch.begin() + container::kHeaderSize, batch.end(),
                         streamed.begin() + container::kHeaderSize));
}

}  // namespace
}  // namespace isobar
