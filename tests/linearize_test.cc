#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "linearize/hilbert.h"
#include "linearize/permutation.h"
#include "linearize/transpose.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

// ---------------------------------------------------------------------------
// Gather/scatter transposes.

class TransposeRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, Linearization>> {};

TEST_P(TransposeRoundTripTest, GatherScatterIsIdentityOnSelectedColumns) {
  const auto [width, mask_pattern, lin] = GetParam();
  const uint64_t full = width >= 64 ? ~0ull : ((1ull << width) - 1);
  const uint64_t mask = mask_pattern & full;
  const Bytes data = RandomBytes(width * 257, width * 31 + mask);

  Bytes packed;
  ASSERT_TRUE(GatherColumns(data, width, mask, lin, &packed).ok());
  EXPECT_EQ(packed.size(), 257u * static_cast<size_t>(PopcountMask(mask, width)));

  // Scatter into a zeroed buffer and verify selected columns match the
  // original while unselected ones stay zero.
  Bytes dest(data.size(), 0);
  ASSERT_TRUE(ScatterColumns(packed, width, mask, lin, MutableByteSpan(dest)).ok());
  for (size_t i = 0; i < 257; ++i) {
    for (size_t j = 0; j < width; ++j) {
      const uint8_t expected =
          (mask & (1ull << j)) ? data[i * width + j] : 0;
      ASSERT_EQ(dest[i * width + j], expected) << "element " << i << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsMasksLinearizations, TransposeRoundTripTest,
    ::testing::Combine(
        ::testing::Values<size_t>(1, 2, 4, 8, 16, 64),
        ::testing::Values<uint64_t>(0x1ull, 0xC1ull, 0x5555555555555555ull,
                                    ~0ull),
        ::testing::Values(Linearization::kRow, Linearization::kColumn)));

TEST(TransposeTest, ColumnLinearizationIsByteShuffle) {
  // width 2, full mask, column order: all first bytes then all second bytes.
  const Bytes data = {1, 2, 3, 4, 5, 6};
  Bytes packed;
  ASSERT_TRUE(
      GatherColumns(data, 2, 0b11, Linearization::kColumn, &packed).ok());
  EXPECT_EQ(packed, (Bytes{1, 3, 5, 2, 4, 6}));
}

TEST(TransposeTest, RowLinearizationKeepsElementBytesAdjacent) {
  const Bytes data = {1, 2, 3, 4, 5, 6};
  Bytes packed;
  ASSERT_TRUE(GatherColumns(data, 2, 0b10, Linearization::kRow, &packed).ok());
  EXPECT_EQ(packed, (Bytes{2, 4, 6}));
}

TEST(TransposeTest, MaskBeyondWidthRejected) {
  const Bytes data(16, 0);
  Bytes packed;
  EXPECT_EQ(GatherColumns(data, 2, 0b100, Linearization::kRow, &packed).code(),
            StatusCode::kInvalidArgument);
}

TEST(TransposeTest, PackedSizeMismatchRejected) {
  Bytes dest(16, 0);
  Bytes packed(5, 0);
  EXPECT_EQ(ScatterColumns(packed, 2, 0b01, Linearization::kRow,
                           MutableByteSpan(dest)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TransposeTest, EmptyMaskYieldsEmptyOutput) {
  const Bytes data(24, 7);
  Bytes packed;
  ASSERT_TRUE(GatherColumns(data, 8, 0, Linearization::kRow, &packed).ok());
  EXPECT_TRUE(packed.empty());
}

// ---------------------------------------------------------------------------
// Hilbert curve.

class HilbertBijectivityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HilbertBijectivityTest, IndexCoordsRoundTripAndCoverage) {
  const auto [dims, bits] = GetParam();
  HilbertCurve curve(dims, bits);
  const uint64_t cells = curve.cell_count();
  std::set<uint64_t> visited;
  std::vector<uint32_t> coords(dims);
  for (uint64_t h = 0; h < cells; ++h) {
    curve.CoordsFromIndex(h, coords);
    // Coordinates in range.
    for (int i = 0; i < dims; ++i) {
      ASSERT_LT(coords[i], 1u << bits);
    }
    // Inverse maps back.
    ASSERT_EQ(curve.IndexFromCoords(coords), h);
    // Encode position to check full coverage.
    uint64_t key = 0;
    for (int i = 0; i < dims; ++i) key = (key << bits) | coords[i];
    visited.insert(key);
  }
  EXPECT_EQ(visited.size(), cells);  // bijective: every cell exactly once
}

INSTANTIATE_TEST_SUITE_P(DimsAndBits, HilbertBijectivityTest,
                         ::testing::Values(std::make_tuple(1, 6),
                                           std::make_tuple(2, 3),
                                           std::make_tuple(2, 5),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(3, 4)));

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of a Hilbert walk: each step moves by exactly 1
  // in exactly one dimension.
  HilbertCurve curve(2, 5);
  std::vector<uint32_t> prev(2), cur(2);
  curve.CoordsFromIndex(0, prev);
  for (uint64_t h = 1; h < curve.cell_count(); ++h) {
    curve.CoordsFromIndex(h, cur);
    int manhattan = 0;
    for (int i = 0; i < 2; ++i) {
      manhattan += std::abs(static_cast<int>(cur[i]) - static_cast<int>(prev[i]));
    }
    ASSERT_EQ(manhattan, 1) << "at index " << h;
    prev = cur;
  }
}

TEST(HilbertTest, ThreeDWalkIsAlsoContiguous) {
  HilbertCurve curve(3, 3);
  std::vector<uint32_t> prev(3), cur(3);
  curve.CoordsFromIndex(0, prev);
  for (uint64_t h = 1; h < curve.cell_count(); ++h) {
    curve.CoordsFromIndex(h, cur);
    int manhattan = 0;
    for (int i = 0; i < 3; ++i) {
      manhattan += std::abs(static_cast<int>(cur[i]) - static_cast<int>(prev[i]));
    }
    ASSERT_EQ(manhattan, 1);
    prev = cur;
  }
}

TEST(HilbertReorderTest, PowerOfTwoGridIsPermutation) {
  const size_t width = 4;
  const uint32_t dims[] = {16, 16};
  Bytes data;
  for (uint32_t i = 0; i < 256; ++i) AppendLE32(data, i);
  Bytes reordered;
  ASSERT_TRUE(HilbertReorder(data, width, dims, &reordered).ok());
  ASSERT_EQ(reordered.size(), data.size());
  std::set<uint32_t> seen;
  for (size_t i = 0; i < 256; ++i) {
    seen.insert(LoadLE32(reordered.data() + i * width));
  }
  EXPECT_EQ(seen.size(), 256u);
  // Must not be the identity order (the curve actually reorders).
  EXPECT_NE(reordered, data);
}

TEST(HilbertReorderTest, NonPowerOfTwoGridCoversAllElements) {
  const uint32_t dims[] = {5, 7, 3};
  const size_t n = 5 * 7 * 3;
  Bytes data;
  for (uint32_t i = 0; i < n; ++i) AppendLE32(data, i + 1000);
  Bytes reordered;
  ASSERT_TRUE(HilbertReorder(data, 4, dims, &reordered).ok());
  ASSERT_EQ(reordered.size(), data.size());
  std::set<uint32_t> seen;
  for (size_t i = 0; i < n; ++i) {
    seen.insert(LoadLE32(reordered.data() + i * 4));
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(HilbertReorderTest, ShapeMismatchRejected) {
  const uint32_t dims[] = {4, 4};
  Bytes data(17 * 4, 0);  // 17 elements != 16 cells
  Bytes out;
  EXPECT_EQ(HilbertReorder(data, 4, dims, &out).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Permutations.

TEST(PermutationTest, IsAValidPermutation) {
  const auto perm = RandomPermutation(1000, 42);
  std::set<uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(PermutationTest, DeterministicPerSeed) {
  EXPECT_EQ(RandomPermutation(100, 7), RandomPermutation(100, 7));
  EXPECT_NE(RandomPermutation(100, 7), RandomPermutation(100, 8));
}

TEST(PermutationTest, InverseComposesToIdentity) {
  const auto perm = RandomPermutation(500, 3);
  const auto inv = InvertPermutation(perm);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(inv[perm[i]], i);
  }
}

TEST(PermutationTest, ApplyThenApplyInverseRestoresData) {
  const Bytes data = RandomBytes(8 * 200, 77);
  const auto perm = RandomPermutation(200, 5);
  Bytes shuffled, restored;
  ASSERT_TRUE(ApplyPermutation(data, 8, perm, &shuffled).ok());
  EXPECT_NE(shuffled, data);
  ASSERT_TRUE(
      ApplyPermutation(shuffled, 8, InvertPermutation(perm), &restored).ok());
  EXPECT_EQ(restored, data);
}

TEST(PermutationTest, SizeMismatchRejected) {
  const Bytes data(64, 0);
  Bytes out;
  EXPECT_EQ(ApplyPermutation(data, 8, RandomPermutation(9, 1), &out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace isobar
