#include <gtest/gtest.h>

#include <string>

#include "compressors/codec.h"
#include "compressors/lzss_codec.h"
#include "compressors/registry.h"
#include "compressors/rle_codec.h"
#include "compressors/zlib_codec.h"
#include "compressors/bzip2_codec.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

Bytes RepetitiveBytes(size_t n) {
  Bytes out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>((i / 97) % 7);
  }
  return out;
}

Bytes TextLikeBytes(size_t n) {
  const std::string phrase =
      "the isobar preconditioner separates signal from noise; ";
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const size_t take = std::min(phrase.size(), n - out.size());
    out.insert(out.end(), phrase.begin(), phrase.begin() + take);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Round-trip property over every registered codec and several data shapes.

struct RoundTripCase {
  CodecId id;
  const char* shape;
};

class CodecRoundTripTest
    : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CodecRoundTripTest, CompressThenDecompressIsIdentity) {
  const RoundTripCase& param = GetParam();
  auto codec_result = GetCodec(param.id);
  ASSERT_TRUE(codec_result.ok());
  const Codec* codec = *codec_result;

  Bytes input;
  const std::string shape = param.shape;
  if (shape == "empty") {
    input = {};
  } else if (shape == "single") {
    input = {0x5A};
  } else if (shape == "random") {
    input = RandomBytes(10000, 17);
  } else if (shape == "repetitive") {
    input = RepetitiveBytes(10000);
  } else if (shape == "text") {
    input = TextLikeBytes(10000);
  } else if (shape == "allzero") {
    input = Bytes(10000, 0);
  }

  Bytes compressed;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  Bytes output;
  ASSERT_TRUE(codec->Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(input, output);
}

std::string CaseName(const ::testing::TestParamInfo<RoundTripCase>& info) {
  return std::string(CodecIdToString(info.param.id)) + "_" + info.param.shape;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundTripTest,
    ::testing::Values(
        RoundTripCase{CodecId::kStored, "empty"},
        RoundTripCase{CodecId::kStored, "single"},
        RoundTripCase{CodecId::kStored, "random"},
        RoundTripCase{CodecId::kZlib, "empty"},
        RoundTripCase{CodecId::kZlib, "single"},
        RoundTripCase{CodecId::kZlib, "random"},
        RoundTripCase{CodecId::kZlib, "repetitive"},
        RoundTripCase{CodecId::kZlib, "text"},
        RoundTripCase{CodecId::kZlib, "allzero"},
        RoundTripCase{CodecId::kBzip2, "single"},
        RoundTripCase{CodecId::kBzip2, "random"},
        RoundTripCase{CodecId::kBzip2, "repetitive"},
        RoundTripCase{CodecId::kBzip2, "text"},
        RoundTripCase{CodecId::kBzip2, "allzero"},
        RoundTripCase{CodecId::kRle, "empty"},
        RoundTripCase{CodecId::kRle, "single"},
        RoundTripCase{CodecId::kRle, "random"},
        RoundTripCase{CodecId::kRle, "repetitive"},
        RoundTripCase{CodecId::kRle, "text"},
        RoundTripCase{CodecId::kRle, "allzero"},
        RoundTripCase{CodecId::kLzss, "empty"},
        RoundTripCase{CodecId::kLzss, "single"},
        RoundTripCase{CodecId::kLzss, "random"},
        RoundTripCase{CodecId::kLzss, "repetitive"},
        RoundTripCase{CodecId::kLzss, "text"},
        RoundTripCase{CodecId::kLzss, "allzero"},
        RoundTripCase{CodecId::kHuffman, "empty"},
        RoundTripCase{CodecId::kHuffman, "single"},
        RoundTripCase{CodecId::kHuffman, "random"},
        RoundTripCase{CodecId::kHuffman, "repetitive"},
        RoundTripCase{CodecId::kHuffman, "text"},
        RoundTripCase{CodecId::kHuffman, "allzero"},
        RoundTripCase{CodecId::kBwt, "empty"},
        RoundTripCase{CodecId::kBwt, "single"},
        RoundTripCase{CodecId::kBwt, "random"},
        RoundTripCase{CodecId::kBwt, "repetitive"},
        RoundTripCase{CodecId::kBwt, "text"},
        RoundTripCase{CodecId::kBwt, "allzero"},
        RoundTripCase{CodecId::kLzans, "empty"},
        RoundTripCase{CodecId::kLzans, "single"},
        RoundTripCase{CodecId::kLzans, "random"},
        RoundTripCase{CodecId::kLzans, "repetitive"},
        RoundTripCase{CodecId::kLzans, "text"},
        RoundTripCase{CodecId::kLzans, "allzero"}),
    CaseName);

// ---------------------------------------------------------------------------
// Compression effectiveness sanity: structured data must actually shrink.

class CodecShrinkTest : public ::testing::TestWithParam<CodecId> {};

TEST_P(CodecShrinkTest, StructuredDataShrinks) {
  auto codec = GetCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  const Bytes input = RepetitiveBytes(64 * 1024);
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 2)
      << CodecIdToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(RealCodecs, CodecShrinkTest,
                         ::testing::Values(CodecId::kZlib, CodecId::kBzip2,
                                           CodecId::kRle, CodecId::kLzss,
                                           CodecId::kHuffman, CodecId::kBwt,
                                           CodecId::kLzans),
                         [](const auto& info) {
                           return std::string(CodecIdToString(info.param));
                         });

// ---------------------------------------------------------------------------
// Error paths.

TEST(StoredCodecTest, SizeMismatchIsCorruption) {
  StoredCodec codec;
  Bytes out;
  Bytes data = {1, 2, 3};
  EXPECT_EQ(codec.Decompress(data, 4, &out).code(), StatusCode::kCorruption);
}

TEST(ZlibCodecTest, GarbageInputIsCorruption) {
  ZlibCodec codec;
  Bytes garbage = RandomBytes(100, 3);
  Bytes out;
  EXPECT_EQ(codec.Decompress(garbage, 1000, &out).code(),
            StatusCode::kCorruption);
}

TEST(ZlibCodecTest, WrongOriginalSizeIsCorruption) {
  ZlibCodec codec;
  Bytes input = TextLikeBytes(1000);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes out;
  EXPECT_FALSE(codec.Decompress(compressed, 999, &out).ok());
  EXPECT_FALSE(codec.Decompress(compressed, 1001, &out).ok());
}

TEST(LzAnsCodecTest, MultiBlockRoundTripWithCrossBlockMatches) {
  // > 2 blocks of text keeps matches flowing across the 128 KiB block
  // boundary (the window spans blocks even though sequences do not).
  const Bytes input = TextLikeBytes(300 * 1024);
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 8);
  Bytes output;
  ASSERT_TRUE((*codec)->Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(input, output);
}

TEST(LzAnsCodecTest, MixedNoiseAndStructureRoundTrips) {
  Bytes input = RandomBytes(150 * 1024, 21);  // raw-escape blocks
  const Bytes text = TextLikeBytes(150 * 1024);
  input.insert(input.end(), text.begin(), text.end());
  input.insert(input.end(), size_t{150} * 1024, uint8_t{7});  // RLE blocks
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  Bytes output;
  ASSERT_TRUE((*codec)->Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(input, output);
}

TEST(LzAnsCodecTest, FullyMatchedBlockHasNoLiterals) {
  // A second block that exactly repeats the first (matches may reach back
  // across the block boundary) compresses to a single zero-literal
  // sequence, i.e. a kLitNone block: random bytes keep the hash chains
  // shallow so the whole-block match is found immediately. The decoder
  // used to leave its literal source pointer null in that mode and read
  // through it.
  constexpr size_t kBlock = 128 * 1024;
  const Bytes first = RandomBytes(kBlock, 17);
  Bytes input = first;
  input.insert(input.end(), first.begin(), first.end());
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  Bytes output;
  ASSERT_TRUE((*codec)->Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(input, output);
}

TEST(LzAnsCodecTest, GarbageInputIsCorruption) {
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  Bytes garbage = RandomBytes(200, 5);
  Bytes out;
  // Whatever the garbage parses as, it must fail closed, not crash.
  EXPECT_FALSE((*codec)->Decompress(garbage, 100000, &out).ok());
}

TEST(LzAnsCodecTest, WrongOriginalSizeIsCorruption) {
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  const Bytes input = TextLikeBytes(5000);
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  Bytes out;
  EXPECT_FALSE((*codec)->Decompress(compressed, 4999, &out).ok());
  EXPECT_FALSE((*codec)->Decompress(compressed, 5001, &out).ok());
}

TEST(LzAnsCodecTest, TruncatedStreamIsCorruption) {
  auto codec = GetCodec(CodecId::kLzans);
  ASSERT_TRUE(codec.ok());
  const Bytes input = TextLikeBytes(20000);
  Bytes compressed;
  ASSERT_TRUE((*codec)->Compress(input, &compressed).ok());
  Bytes out;
  for (size_t cut : {size_t{0}, size_t{3}, compressed.size() / 2,
                     compressed.size() - 1}) {
    Bytes truncated(compressed.begin(), compressed.begin() + cut);
    EXPECT_FALSE((*codec)->Decompress(truncated, input.size(), &out).ok())
        << "cut=" << cut;
  }
}

TEST(Bzip2CodecTest, GarbageInputIsCorruption) {
  Bzip2Codec codec;
  Bytes garbage = RandomBytes(100, 4);
  Bytes out;
  EXPECT_EQ(codec.Decompress(garbage, 1000, &out).code(),
            StatusCode::kCorruption);
}

TEST(ZlibCodecTest, LevelIsClamped) {
  EXPECT_EQ(ZlibCodec(0).level(), 1);
  EXPECT_EQ(ZlibCodec(99).level(), 9);
  EXPECT_EQ(ZlibCodec(6).level(), 6);
}

TEST(Bzip2CodecTest, BlockSizeIsClamped) {
  EXPECT_EQ(Bzip2Codec(0).block_size_100k(), 1);
  EXPECT_EQ(Bzip2Codec(42).block_size_100k(), 9);
}

TEST(ZlibCodecTest, HigherLevelNoWorseOnText) {
  const Bytes input = TextLikeBytes(256 * 1024);
  Bytes fast, best;
  ASSERT_TRUE(ZlibCodec(1).Compress(input, &fast).ok());
  ASSERT_TRUE(ZlibCodec(9).Compress(input, &best).ok());
  EXPECT_LE(best.size(), fast.size());
}

// ---------------------------------------------------------------------------
// RLE stream format specifics.

TEST(RleCodecTest, EncodesLongRunsCompactly) {
  RleCodec codec;
  Bytes input(130, 0xAB);  // exactly the maximum repeat run
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  EXPECT_EQ(compressed.size(), 2u);
  Bytes out;
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(RleCodecTest, RunJustOverMaxSplits) {
  RleCodec codec;
  Bytes input(131, 0xCD);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes out;
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(RleCodecTest, TwoByteRunsStayLiteral) {
  RleCodec codec;
  Bytes input = {1, 1, 2, 2, 3, 3};  // runs below the repeat threshold
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  EXPECT_EQ(compressed.size(), input.size() + 1);  // one literal header
  Bytes out;
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(RleCodecTest, TruncatedStreamIsCorruption) {
  RleCodec codec;
  Bytes input(100, 0x11);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  compressed.pop_back();
  Bytes out;
  EXPECT_EQ(codec.Decompress(compressed, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(RleCodecTest, OverlongStreamIsCorruption) {
  RleCodec codec;
  Bytes input(100, 0x22);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes out;
  EXPECT_EQ(codec.Decompress(compressed, 50, &out).code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// LZSS stream format specifics.

TEST(LzssCodecTest, OverlappingMatchDecodesByteAtATime) {
  // "abcabcabc..." forces matches whose source overlaps their destination.
  LzssCodec codec;
  Bytes input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<uint8_t>('a' + i % 3));
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 3);
  Bytes out;
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzssCodecTest, MatchBeyondWindowNotUsed) {
  // A repeated block separated by > 4 KiB of noise: the second copy cannot
  // reference the first, but the stream must still round-trip.
  LzssCodec codec;
  Bytes block = TextLikeBytes(512);
  Bytes input = block;
  Bytes noise = RandomBytes(8192, 5);
  input.insert(input.end(), noise.begin(), noise.end());
  input.insert(input.end(), block.begin(), block.end());
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzssCodecTest, CorruptMatchDistanceDetected) {
  // Hand-craft a stream whose match points before the start of output.
  Bytes stream = {0x00, 0xFF, 0x0F};  // 8 match tokens; first: dist 4096
  LzssCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(stream, 100, &out).code(),
            StatusCode::kCorruption);
}

TEST(LzssCodecTest, TruncatedLiteralDetected) {
  Bytes stream = {0xFF};  // flags promise 8 literals, none present
  LzssCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(stream, 8, &out).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(RegistryTest, LooksUpEveryIdAndName) {
  for (CodecId id : AllCodecIds()) {
    auto by_id = GetCodec(id);
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ((*by_id)->id(), id);
    auto by_name = GetCodecByName(CodecIdToString(id));
    ASSERT_TRUE(by_name.ok());
    EXPECT_EQ(*by_id, *by_name);  // singletons
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(GetCodecByName("lz4").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, UnknownIdIsNotFound) {
  EXPECT_EQ(GetCodec(static_cast<CodecId>(250)).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace isobar
