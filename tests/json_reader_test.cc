// Strict JSON reader suite: the RFC 8259 value grammar the telemetry
// exporters promise to emit, including the rejections (trailing commas,
// leading zeros, bare words, unpaired surrogates) that keep the reader an
// honest validator of the exporters.
#include "telemetry/json_reader.h"

#include <gtest/gtest.h>

#include <string>

namespace isobar::telemetry {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-17.5")->number_value(), -17.5);
  EXPECT_DOUBLE_EQ(ParseJson("6.02e23")->number_value(), 6.02e23);
  EXPECT_DOUBLE_EQ(ParseJson("0")->number_value(), 0.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonReaderTest, ParsesNestedStructure) {
  auto doc = ParseJson(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(doc.ok());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_EQ(a->array_items()[2].FieldStringOr("b", ""), "c");
  const JsonValue* d = doc->Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->Find("e")->is_null());
}

TEST(JsonReaderTest, PreservesMemberInsertionOrder) {
  auto doc = ParseJson(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(doc.ok());
  const auto& members = doc->object_members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonReaderTest, DecodesEscapesAndSurrogatePairs) {
  auto doc = ParseJson(R"("\"\\\/\b\f\n\r\t\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(),
            "\"\\/\b\f\n\r\tA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,2,]").ok());        // trailing comma
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());    // trailing comma
  EXPECT_FALSE(ParseJson("01").ok());            // leading zero
  EXPECT_FALSE(ParseJson("NaN").ok());
  EXPECT_FALSE(ParseJson("Infinity").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("{a:1}").ok());         // unquoted key
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad \x01 control\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());   // unpaired surrogate
  EXPECT_FALSE(ParseJson("1 2").ok());           // trailing garbage
  EXPECT_FALSE(ParseJson("[1] x").ok());
}

TEST(JsonReaderTest, ErrorsCarryLineAndColumn) {
  auto doc = ParseJson("{\n  \"a\": bad\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().ToString().find("2:"), std::string::npos)
      << doc.status().ToString();
}

TEST(JsonReaderTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
  // 32 levels is comfortably within the limit.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 32; ++i) ok += ']';
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonReaderTest, TypedAccessorsFallBack) {
  auto doc = ParseJson(R"({"n":3.5,"s":"text"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->FieldNumberOr("n", -1), 3.5);
  EXPECT_DOUBLE_EQ(doc->FieldNumberOr("missing", -1), -1);
  EXPECT_DOUBLE_EQ(doc->FieldNumberOr("s", -1), -1);  // wrong type
  EXPECT_EQ(doc->FieldStringOr("s", "?"), "text");
  EXPECT_EQ(doc->FieldStringOr("n", "?"), "?");
  EXPECT_EQ(doc->Find("missing"), nullptr);
  EXPECT_EQ(ParseJson("[1]")->Find("a"), nullptr);  // not an object
}

}  // namespace
}  // namespace isobar::telemetry
