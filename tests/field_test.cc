#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/analyzer.h"
#include "core/isobar.h"
#include "datagen/field.h"
#include "fpzip/fpzip_codec.h"
#include "linearize/hilbert.h"

namespace isobar {
namespace {

FieldSpec SmoothSpec(std::vector<uint32_t> dims) {
  FieldSpec spec;
  spec.dims = std::move(dims);
  spec.noise_bytes = 0;
  spec.seed = 3;
  return spec;
}

TEST(FieldTest, ProducesRequestedGeometry) {
  FieldSpec spec;
  spec.dims = {40, 30};
  spec.seed = 1;
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->element_count(), 1200u);
  EXPECT_EQ(field->width(), 8u);
}

TEST(FieldTest, DeterministicPerSeed) {
  FieldSpec spec;
  spec.dims = {64, 64};
  spec.seed = 9;
  auto a = GenerateField(spec);
  auto b = GenerateField(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->data, b->data);
  spec.seed = 10;
  auto c = GenerateField(spec);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->data, c->data);
}

TEST(FieldTest, SpatiallySmoothWithoutNoise) {
  // Adjacent grid cells must differ by much less than the field's range.
  FieldSpec spec = SmoothSpec({128, 128});
  spec.smooth_bytes = 8;  // full precision, no quantization
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());
  double max_step = 0.0;
  for (uint32_t y = 0; y < 128; ++y) {
    for (uint32_t x = 1; x < 128; ++x) {
      double a, b;
      std::memcpy(&a, field->data.data() + (y * 128 + x - 1) * 8, 8);
      std::memcpy(&b, field->data.data() + (y * 128 + x) * 8, 8);
      max_step = std::max(max_step, std::abs(b - a));
    }
  }
  EXPECT_LT(max_step, 0.08);  // range is ~0.9, neighbors within ~3%
}

TEST(FieldTest, AnalyzerSeesInjectedNoiseColumns) {
  FieldSpec spec;
  spec.dims = {256, 256};
  spec.noise_bytes = 5;
  spec.seed = 4;
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());
  const Analyzer analyzer;
  auto analysis = analyzer.Analyze(field->bytes(), 8);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->compressible_mask, 0xFFull & ~0x1Full);
  EXPECT_TRUE(analysis->improvable());
}

TEST(FieldTest, LorenzoPredictorExploitsTheGrid) {
  // On a smooth 2-D field (full precision), the 2-D Lorenzo stencil must
  // beat the 1-D previous-value predictor.
  FieldSpec spec = SmoothSpec({128, 96});
  spec.smooth_bytes = 8;
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());
  Bytes c1, c2;
  ASSERT_TRUE(FpzipCodec(8).Compress(field->bytes(), &c1).ok());
  ASSERT_TRUE(FpzipCodec(8, {128, 96}).Compress(field->bytes(), &c2).ok());
  EXPECT_LT(c2.size(), c1.size());
}

TEST(FieldTest, IsobarPipelineRoundTripsGridData) {
  FieldSpec spec;
  spec.dims = {64, 64, 16};
  spec.noise_bytes = 6;
  spec.seed = 5;
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());

  // Original order and Hilbert order must both round-trip and agree on
  // the analyzer verdict (§III.G on true 3-D data).
  const uint32_t dims[] = {64, 64, 16};
  Bytes hilbert;
  ASSERT_TRUE(HilbertReorder(field->bytes(), 8, dims, &hilbert).ok());

  const IsobarCompressor compressor;
  for (ByteSpan variant : {field->bytes(), ByteSpan(hilbert)}) {
    CompressionStats stats;
    auto compressed = compressor.Compress(variant, 8, &stats);
    ASSERT_TRUE(compressed.ok());
    EXPECT_TRUE(stats.improvable);
    EXPECT_NEAR(stats.mean_htc_fraction, 0.75, 1e-9);
    auto restored = IsobarCompressor::Decompress(*compressed);
    ASSERT_TRUE(restored.ok());
    EXPECT_TRUE(std::equal(restored->begin(), restored->end(),
                           variant.begin()));
  }
}

TEST(FieldTest, FloatFieldsSupported) {
  FieldSpec spec;
  spec.type = ElementType::kFloat32;
  spec.dims = {100, 100};
  spec.noise_bytes = 1;
  spec.seed = 6;
  auto field = GenerateField(spec);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->width(), 4u);
  EXPECT_EQ(field->data.size(), 40000u);
}

TEST(FieldTest, InvalidSpecsRejected) {
  FieldSpec spec;
  spec.dims = {};
  EXPECT_FALSE(GenerateField(spec).ok());
  spec.dims = {4, 4, 4, 4};
  EXPECT_FALSE(GenerateField(spec).ok());
  spec.dims = {4, 0};
  EXPECT_FALSE(GenerateField(spec).ok());
  spec.dims = {8, 8};
  spec.noise_bytes = 9;
  EXPECT_FALSE(GenerateField(spec).ok());
  spec.noise_bytes = 2;
  spec.wavelength = 0.0;
  EXPECT_FALSE(GenerateField(spec).ok());
  spec.wavelength = 32.0;
  spec.smooth_bytes = 0;
  EXPECT_FALSE(GenerateField(spec).ok());
}

}  // namespace
}  // namespace isobar
