#include <gtest/gtest.h>

#include <cmath>

#include "stats/bit_frequency.h"
#include "stats/byte_histogram.h"
#include "stats/summary.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

TEST(ColumnHistogramTest, CountsPerColumn) {
  // Elements of width 2: column 0 always 0xAA, column 1 cycles 0..3.
  Bytes data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(0xAA);
    data.push_back(static_cast<uint8_t>(i % 4));
  }
  ColumnHistogramSet set(2);
  ASSERT_TRUE(set.Update(data).ok());
  EXPECT_EQ(set.element_count(), 100u);
  EXPECT_EQ(set.column(0)[0xAA], 100u);
  EXPECT_EQ(set.MaxFrequency(0), 100u);
  EXPECT_EQ(set.column(1)[0], 25u);
  EXPECT_EQ(set.column(1)[3], 25u);
  EXPECT_EQ(set.MaxFrequency(1), 25u);
}

TEST(ColumnHistogramTest, StreamingUpdatesAccumulate) {
  Bytes part1 = {1, 2, 3, 4};
  Bytes part2 = {1, 2};
  ColumnHistogramSet set(2);
  ASSERT_TRUE(set.Update(part1).ok());
  ASSERT_TRUE(set.Update(part2).ok());
  EXPECT_EQ(set.element_count(), 3u);
  EXPECT_EQ(set.column(0)[1], 2u);
  EXPECT_EQ(set.column(0)[3], 1u);
  EXPECT_EQ(set.column(1)[2], 2u);
}

TEST(ColumnHistogramTest, MisalignedDataRejected) {
  ColumnHistogramSet set(8);
  Bytes data(12, 0);
  EXPECT_EQ(set.Update(data).code(), StatusCode::kInvalidArgument);
}

TEST(ColumnHistogramTest, ConstantColumnHasZeroEntropy) {
  Bytes data(800, 0x42);
  ColumnHistogramSet set(8);
  ASSERT_TRUE(set.Update(data).ok());
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(set.ColumnEntropy(j), 0.0);
  }
}

TEST(ColumnHistogramTest, UniformColumnEntropyNearEight) {
  Bytes data = RandomBytes(8 * 100000, 11);
  ColumnHistogramSet set(8);
  ASSERT_TRUE(set.Update(data).ok());
  for (size_t j = 0; j < 8; ++j) {
    EXPECT_GT(set.ColumnEntropy(j), 7.9);
    EXPECT_LE(set.ColumnEntropy(j), 8.0);
  }
}

TEST(ColumnHistogramTest, ResetClears) {
  Bytes data(80, 0x01);
  ColumnHistogramSet set(8);
  ASSERT_TRUE(set.Update(data).ok());
  set.Reset();
  EXPECT_EQ(set.element_count(), 0u);
  EXPECT_EQ(set.MaxFrequency(0), 0u);
}

TEST(BitFrequencyTest, ConstantDataIsFullyPredictable) {
  Bytes data(80, 0x0F);
  auto profile = ComputeBitFrequency(data, 8);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->probability.size(), 64u);
  for (double p : profile->probability) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(BitFrequencyTest, RandomDataNearHalf) {
  Bytes data = RandomBytes(8 * 50000, 21);
  auto profile = ComputeBitFrequency(data, 8);
  ASSERT_TRUE(profile.ok());
  for (double p : profile->probability) {
    EXPECT_GE(p, 0.5);
    EXPECT_LT(p, 0.52);
  }
}

TEST(BitFrequencyTest, MixedColumnsShowContrast) {
  // Byte 0 constant, byte 1 random: first 8 positions certain, next 8 noisy.
  Bytes data;
  Xoshiro256 rng(5);
  for (int i = 0; i < 50000; ++i) {
    data.push_back(0x00);
    data.push_back(static_cast<uint8_t>(rng.Next()));
  }
  auto profile = ComputeBitFrequency(data, 2);
  ASSERT_TRUE(profile.ok());
  for (int k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(profile->probability[k], 1.0);
  for (int k = 8; k < 16; ++k) EXPECT_LT(profile->probability[k], 0.52);
}

TEST(BitFrequencyTest, OnesCountsMatchProbability) {
  Bytes data = {0xFF, 0x00, 0xFF, 0x00};  // width 1: alternating bytes
  auto profile = ComputeBitFrequency(data, 1);
  ASSERT_TRUE(profile.ok());
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(profile->ones[k], 2u);
    EXPECT_DOUBLE_EQ(profile->probability[k], 0.5);
  }
}

TEST(BitFrequencyTest, InvalidWidthRejected) {
  Bytes data(8, 0);
  EXPECT_FALSE(ComputeBitFrequency(data, 0).ok());
  EXPECT_FALSE(ComputeBitFrequency(data, 65).ok());
  EXPECT_FALSE(ComputeBitFrequency(data, 3).ok());  // 8 % 3 != 0
}

TEST(SummaryTest, AllUniqueElements) {
  Bytes data;
  for (uint64_t i = 0; i < 1024; ++i) AppendLE64(data, i * 2654435761ull);
  auto summary = Summarize(data, 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->element_count, 1024u);
  EXPECT_DOUBLE_EQ(summary->unique_value_percent, 100.0);
  EXPECT_NEAR(summary->shannon_entropy, 10.0, 1e-9);  // log2(1024)
  EXPECT_NEAR(summary->randomness_percent, 100.0, 1e-9);
}

TEST(SummaryTest, SingleRepeatedValue) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) AppendLE64(data, 42);
  auto summary = Summarize(data, 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary->unique_value_percent, 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(summary->shannon_entropy, 0.0);
  EXPECT_DOUBLE_EQ(summary->randomness_percent, 0.0);
}

TEST(SummaryTest, TwoEquallyLikelyValuesHaveOneBit) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) AppendLE64(data, i % 2);
  auto summary = Summarize(data, 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary->shannon_entropy, 1.0, 1e-9);
}

TEST(SummaryTest, DuplicatesLowerUniquePercent) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) AppendLE64(data, i % 100);
  auto summary = Summarize(data, 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary->unique_value_percent, 10.0, 1e-9);
  EXPECT_NEAR(summary->shannon_entropy, std::log2(100.0), 1e-9);
}

TEST(SummaryTest, EmptyDataIsValid) {
  auto summary = Summarize({}, 8);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->element_count, 0u);
}

TEST(SummaryTest, WidthValidation) {
  Bytes data(16, 0);
  EXPECT_FALSE(Summarize(data, 0).ok());
  EXPECT_FALSE(Summarize(data, 65).ok());
  EXPECT_FALSE(Summarize(data, 3).ok());
}

TEST(SummaryTest, WideElementsSupported) {
  // 64-byte elements (xgc_iphase-style records).
  Bytes data;
  Xoshiro256 rng(9);
  for (int i = 0; i < 64; ++i) {
    for (int b = 0; b < 64; ++b) {
      data.push_back(static_cast<uint8_t>(rng.Next()));
    }
  }
  auto summary = Summarize(data, 64);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->element_count, 64u);
  EXPECT_DOUBLE_EQ(summary->unique_value_percent, 100.0);
}

}  // namespace
}  // namespace isobar
