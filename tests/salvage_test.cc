// Corruption-resilience suite: salvage-mode decode (ChunkErrorPolicy
// kSkip / kZeroFill) through both the batch decoder and the streaming
// reader, the SalvageReport accounting, the fault-injection sink, and the
// streaming writer's poisoned-after-failure contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/container.h"
#include "core/isobar.h"
#include "core/stream.h"
#include "datagen/registry.h"
#include "io/fault_injection.h"
#include "io/sink.h"

namespace isobar {
namespace {

constexpr uint64_t kChunkElements = 10000;
constexpr uint64_t kTotalElements = 30000;  // Three full chunks.

Bytes MakeContainer(Bytes* plaintext, size_t* width) {
  auto spec = FindDatasetSpec("s3d_vmag");
  EXPECT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, kTotalElements);
  EXPECT_TRUE(dataset.ok());
  *plaintext = dataset->data;
  *width = dataset->width();
  CompressOptions options;
  options.chunk_elements = kChunkElements;
  options.eupa.sample_elements = 2048;
  const IsobarCompressor compressor(options);
  auto compressed = compressor.Compress(dataset->bytes(), dataset->width());
  EXPECT_TRUE(compressed.ok());
  return *compressed;
}

struct RecordRange {
  size_t header_offset = 0;   // Chunk header start.
  size_t payload_offset = 0;  // First payload byte.
  size_t end_offset = 0;      // One past the record.
};

// Walks the container's (self-delimiting) records. Bounded by the
// header's chunk count: a v2 container's records are followed by the
// chunk-index footer, not by end-of-buffer.
std::vector<RecordRange> FindRecords(const Bytes& container) {
  std::vector<RecordRange> records;
  size_t offset = 0;
  auto header = container::ParseHeader(container, &offset);
  EXPECT_TRUE(header.ok());
  while (records.size() < header->chunk_count && offset < container.size()) {
    RecordRange range;
    range.header_offset = offset;
    auto chunk = container::ParseChunkHeader(container, &offset);
    EXPECT_TRUE(chunk.ok());
    range.payload_offset = offset;
    offset += chunk->compressed_size + chunk->raw_size;
    range.end_offset = offset;
    records.push_back(range);
  }
  return records;
}

// Flips one payload byte of chunk `index`, which the chunk CRC (or the
// solver's own framing) must catch.
Bytes CorruptPayload(const Bytes& container, size_t index) {
  const auto records = FindRecords(container);
  Bytes mutated = container;
  const RecordRange& r = records[index];
  FlipBits(&mutated, r.payload_offset + (r.end_offset - r.payload_offset) / 2,
           0x20);
  return mutated;
}

// Overwrites chunk `index`'s element_count field (first 8 bytes of the
// chunk header) with a value far above the container's chunk size. The
// section sizes stay intact, so the record still delimits itself.
Bytes CorruptElementCount(const Bytes& container, size_t index) {
  const auto records = FindRecords(container);
  Bytes mutated = container;
  SmashBytes(&mutated, records[index].header_offset, 8, 0xEE);
  return mutated;
}

// ---------------------------------------------------------------------------
// Batch decoder salvage.

TEST(SalvageDecompressTest, ZeroFillContainsDamageToOneChunk) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 1);
  const size_t chunk_bytes = kChunkElements * width;

  for (uint32_t threads : {1u, 8u}) {
    DecompressOptions options;
    options.num_threads = threads;
    options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
    SalvageReport report;
    options.salvage_report = &report;
    auto result = IsobarCompressor::Decompress(mutated, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    ASSERT_EQ(result->size(), plaintext.size());
    // Chunks 0 and 2 bit-exact, chunk 1 zeroed.
    EXPECT_TRUE(std::equal(result->begin(), result->begin() + chunk_bytes,
                           plaintext.begin()));
    EXPECT_TRUE(std::all_of(result->begin() + chunk_bytes,
                            result->begin() + 2 * chunk_bytes,
                            [](uint8_t b) { return b == 0; }));
    EXPECT_TRUE(std::equal(result->begin() + 2 * chunk_bytes, result->end(),
                           plaintext.begin() + 2 * chunk_bytes));

    EXPECT_EQ(report.chunks_total, 3u);
    EXPECT_EQ(report.chunks_recovered, 2u);
    EXPECT_EQ(report.chunks_zero_filled, 1u);
    EXPECT_EQ(report.bytes_lost, chunk_bytes);
    EXPECT_FALSE(report.truncated_tail);
    ASSERT_EQ(report.damaged.size(), 1u);
    EXPECT_EQ(report.damaged[0].chunk_index, 1u);
    EXPECT_EQ(report.damaged[0].output_offset, chunk_bytes);
    EXPECT_EQ(report.damaged[0].action, ChunkErrorPolicy::kZeroFill);
    EXPECT_FALSE(report.damaged[0].error.ok());
  }
}

TEST(SalvageDecompressTest, SkipElidesDamagedChunk) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 1);
  const size_t chunk_bytes = kChunkElements * width;

  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kSkip;
  SalvageReport report;
  options.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(mutated, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->size(), plaintext.size() - chunk_bytes);
  EXPECT_TRUE(std::equal(result->begin(), result->begin() + chunk_bytes,
                         plaintext.begin()));
  EXPECT_TRUE(std::equal(result->begin() + chunk_bytes, result->end(),
                         plaintext.begin() + 2 * chunk_bytes));

  EXPECT_EQ(report.chunks_skipped, 1u);
  EXPECT_EQ(report.chunks_recovered, 2u);
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].chunk_index, 1u);
  // output_offset names where the hole is in the post-salvage layout.
  EXPECT_EQ(report.damaged[0].output_offset, chunk_bytes);
  EXPECT_EQ(report.damaged[0].action, ChunkErrorPolicy::kSkip);
}

TEST(SalvageDecompressTest, DefaultPolicyStillFailsWithChunkContext) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 1);

  SalvageReport report;
  DecompressOptions options;
  options.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(mutated, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  // The error names the damaged record.
  EXPECT_NE(result.status().message().find("chunk 1"), std::string::npos)
      << result.status().ToString();
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].chunk_index, 1u);
  EXPECT_EQ(report.damaged[0].action, ChunkErrorPolicy::kFail);
}

TEST(SalvageDecompressTest, OutputIdenticalAcrossThreadCountsUnderSalvage) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 2);

  for (ChunkErrorPolicy policy :
       {ChunkErrorPolicy::kSkip, ChunkErrorPolicy::kZeroFill}) {
    DecompressOptions serial;
    serial.num_threads = 1;
    serial.on_chunk_error = policy;
    DecompressOptions parallel = serial;
    parallel.num_threads = 8;
    auto a = IsobarCompressor::Decompress(mutated, serial);
    auto b = IsobarCompressor::Decompress(mutated, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(SalvageDecompressTest, CorruptElementCountIsContainedDamage) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptElementCount(container, 1);
  const size_t chunk_bytes = kChunkElements * width;

  // kFail: hard error naming the chunk.
  auto failed = IsobarCompressor::Decompress(mutated);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("chunk 1"), std::string::npos);

  // kZeroFill: the record still delimits itself, so chunk 2 survives.
  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
  SalvageReport report;
  options.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(mutated, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), plaintext.size());
  EXPECT_TRUE(std::equal(result->begin() + 2 * chunk_bytes, result->end(),
                         plaintext.begin() + 2 * chunk_bytes));
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].chunk_index, 1u);
  EXPECT_EQ(report.damaged[0].stage, ChunkFailureStage::kHeader);
}

TEST(SalvageDecompressTest, DestroyedFramingLosesTheTail) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const auto records = FindRecords(container);
  const size_t chunk_bytes = kChunkElements * width;
  // Cut into the middle of chunk 1's payload: its header parses, but the
  // declared sections now run past the buffer — framing destroyed.
  Bytes mutated = container;
  TruncateBytes(&mutated, records[1].payload_offset + 10);

  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kSkip;
  SalvageReport report;
  options.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(mutated, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Chunk 0 is all that survives.
  ASSERT_EQ(result->size(), chunk_bytes);
  EXPECT_TRUE(std::equal(result->begin(), result->end(), plaintext.begin()));
  EXPECT_TRUE(report.truncated_tail);
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].chunk_index, 1u);

  // Default policy still fails outright.
  auto failed = IsobarCompressor::Decompress(mutated);
  EXPECT_FALSE(failed.ok());
}

TEST(SalvageDecompressTest, CleanContainerYieldsCleanReport) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
  SalvageReport report;
  options.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(container, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, plaintext);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.chunks_recovered, 3u);
  EXPECT_EQ(report.bytes_recovered, plaintext.size());
}

// ---------------------------------------------------------------------------
// Streaming reader salvage.

TEST(SalvageStreamReaderTest, ZeroFillReturnsStandInChunk) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 1);
  const size_t chunk_bytes = kChunkElements * width;

  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
  IsobarStreamReader reader(mutated, options);
  ASSERT_TRUE(reader.Init().ok());
  std::vector<Bytes> chunks;
  Bytes chunk;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    chunks.push_back(chunk);
  }
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_TRUE(std::equal(chunks[0].begin(), chunks[0].end(),
                         plaintext.begin()));
  ASSERT_EQ(chunks[1].size(), chunk_bytes);
  EXPECT_TRUE(std::all_of(chunks[1].begin(), chunks[1].end(),
                          [](uint8_t b) { return b == 0; }));
  EXPECT_TRUE(std::equal(chunks[2].begin(), chunks[2].end(),
                         plaintext.begin() + 2 * chunk_bytes));

  const SalvageReport& report = reader.salvage_report();
  EXPECT_EQ(report.chunks_zero_filled, 1u);
  EXPECT_EQ(report.chunks_recovered, 2u);
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].chunk_index, 1u);
  // A payload flip is caught by the solver or by the CRC — never blamed
  // on the (intact) chunk header.
  EXPECT_NE(report.damaged[0].stage, ChunkFailureStage::kHeader);
}

TEST(SalvageStreamReaderTest, SkipAbsorbsDamagedChunk) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 1);
  const size_t chunk_bytes = kChunkElements * width;

  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kSkip;
  IsobarStreamReader reader(mutated, options);
  ASSERT_TRUE(reader.Init().ok());
  std::vector<Bytes> chunks;
  Bytes chunk;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    chunks.push_back(chunk);
  }
  // The damaged chunk is absorbed; its neighbours come through bit-exact.
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_TRUE(std::equal(chunks[0].begin(), chunks[0].end(),
                         plaintext.begin()));
  EXPECT_TRUE(std::equal(chunks[1].begin(), chunks[1].end(),
                         plaintext.begin() + 2 * chunk_bytes));
  EXPECT_EQ(reader.chunks_read(), 3u);
  EXPECT_EQ(reader.salvage_report().chunks_skipped, 1u);
}

TEST(SalvageStreamReaderTest, DestroyedFramingEndsStream) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const auto records = FindRecords(container);
  Bytes mutated = container;
  TruncateBytes(&mutated, records[2].header_offset + 5);

  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kZeroFill;
  IsobarStreamReader reader(mutated, options);
  ASSERT_TRUE(reader.Init().ok());
  Bytes chunk;
  int delivered = 0;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++delivered;
  }
  EXPECT_EQ(delivered, 2);
  EXPECT_TRUE(reader.salvage_report().truncated_tail);
}

TEST(SalvageStreamReaderTest, DefaultPolicyStillFails) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptPayload(container, 0);

  IsobarStreamReader reader(mutated);
  ASSERT_TRUE(reader.Init().ok());
  Bytes chunk;
  auto more = reader.NextChunk(&chunk);
  ASSERT_FALSE(more.ok());
  EXPECT_NE(more.status().message().find("chunk 0"), std::string::npos);
}

TEST(SalvageStreamReaderTest, SkipChunkRejectsOversizedElementCount) {
  Bytes plaintext;
  size_t width = 0;
  const Bytes container = MakeContainer(&plaintext, &width);
  const Bytes mutated = CorruptElementCount(container, 1);

  // Default policy: the corrupt count is rejected before it can poison
  // the running element total.
  IsobarStreamReader reader(mutated);
  ASSERT_TRUE(reader.Init().ok());
  ASSERT_TRUE(*reader.SkipChunk());
  auto second = reader.SkipChunk();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kCorruption);
  EXPECT_NE(second.status().message().find("chunk 1"), std::string::npos);

  // Salvaging policy: the record is recorded as damaged and skipped over,
  // and the stream still ends cleanly.
  DecompressOptions options;
  options.on_chunk_error = ChunkErrorPolicy::kSkip;
  IsobarStreamReader salvager(mutated, options);
  ASSERT_TRUE(salvager.Init().ok());
  while (true) {
    auto more = salvager.SkipChunk();
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
  }
  EXPECT_EQ(salvager.chunks_read(), 3u);
  ASSERT_EQ(salvager.salvage_report().damaged.size(), 1u);
  EXPECT_EQ(salvager.salvage_report().damaged[0].chunk_index, 1u);
}

// ---------------------------------------------------------------------------
// Fault injection sink + writer poisoning.

TEST(FaultInjectionSinkTest, TearsWriteAtFaultByte) {
  Bytes written;
  MemorySink memory(&written);
  FaultInjectionSink sink(4, &memory);
  const Bytes data = {1, 2, 3, 4, 5, 6};
  auto status = sink.Write(data);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_TRUE(sink.tripped());
  // The prefix "reached storage" before the fault.
  EXPECT_EQ(written, Bytes({1, 2, 3, 4}));
  // Every later write keeps failing.
  EXPECT_FALSE(sink.Write(data).ok());
  EXPECT_EQ(written.size(), 4u);
}

TEST(FaultInjectionSinkTest, ForwardsUntilFaultByte) {
  Bytes written;
  MemorySink memory(&written);
  FaultInjectionSink sink(8, &memory);
  EXPECT_TRUE(sink.Write(Bytes{1, 2, 3, 4}).ok());
  EXPECT_TRUE(sink.Write(Bytes{5, 6, 7, 8}).ok());
  EXPECT_FALSE(sink.tripped());
  EXPECT_FALSE(sink.Write(Bytes{9}).ok());
  EXPECT_TRUE(sink.tripped());
  EXPECT_EQ(written.size(), 8u);
}

TEST(SalvageWriterTest, FinishStaysPoisonedAfterSinkFailure) {
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 3000);
  ASSERT_TRUE(dataset.ok());

  CompressOptions options;
  options.chunk_elements = 1000;
  options.eupa.sample_elements = 512;
  options.num_threads = 1;

  Bytes written;
  MemorySink memory(&written);
  // Enough room for the container header and part of a record, then fail.
  FaultInjectionSink sink(200, &memory);
  IsobarStreamWriter writer(options, dataset->width(), &sink);

  Status status = writer.Append(dataset->bytes());
  if (status.ok()) status = writer.Finish();
  ASSERT_EQ(status.code(), StatusCode::kIOError);

  // A chunk has been dropped: the writer must keep failing instead of
  // completing a container with a hole in it.
  const Status retry = writer.Finish();
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.code(), StatusCode::kIOError);
  EXPECT_FALSE(writer.finished());
  EXPECT_FALSE(writer.Append(dataset->bytes()).ok());
}

TEST(SalvageWriterTest, PipelinedWriterPoisonsToo) {
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 8000);
  ASSERT_TRUE(dataset.ok());

  CompressOptions options;
  options.chunk_elements = 1000;
  options.eupa.sample_elements = 512;
  options.num_threads = 4;

  Bytes written;
  MemorySink memory(&written);
  FaultInjectionSink sink(500, &memory);
  IsobarStreamWriter writer(options, dataset->width(), &sink);

  Status status = writer.Append(dataset->bytes());
  if (status.ok()) status = writer.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(writer.Finish().ok());
  EXPECT_FALSE(writer.finished());
}

// The torn container a failed writer leaves behind is exactly what
// salvage mode exists for: everything before the fault is recoverable.
TEST(SalvageWriterTest, TornContainerIsSalvageable) {
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 5000);
  ASSERT_TRUE(dataset.ok());

  CompressOptions options;
  options.chunk_elements = 1000;
  options.eupa.sample_elements = 512;
  options.num_threads = 1;

  Bytes written;
  MemorySink memory(&written);
  FaultInjectionSink sink(3000, &memory);
  IsobarStreamWriter writer(options, dataset->width(), &sink);
  Status status = writer.Append(dataset->bytes());
  if (status.ok()) status = writer.Finish();
  ASSERT_FALSE(status.ok());
  ASSERT_GT(written.size(), container::kHeaderSize);

  DecompressOptions salvage;
  salvage.on_chunk_error = ChunkErrorPolicy::kSkip;
  SalvageReport report;
  salvage.salvage_report = &report;
  auto result = IsobarCompressor::Decompress(written, salvage);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Whatever made it out intact decodes bit-exact.
  const size_t chunk_bytes = 1000 * dataset->width();
  ASSERT_EQ(result->size() % chunk_bytes, 0u);
  EXPECT_TRUE(std::equal(result->begin(), result->end(),
                         dataset->data.begin()));
}

}  // namespace
}  // namespace isobar
