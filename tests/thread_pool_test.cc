#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace isobar {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&done] { ++done; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, SubmitDeliversReturnValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  // With one worker, external submissions degrade to strict FIFO: each
  // task lands at the back of the only deque and the worker pops fronts.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i, &order, &mutex] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, WorkStealingSpreadsSkewedLoad) {
  // One externally-submitted task fans 32 subtasks into its own worker's
  // deque, then blocks in get() without ever popping its own queue — so
  // every subtask can only run by being stolen. The assertions below are
  // scheduling-independent invariants from the pool's own stats (a prior
  // version asserted >= 2 distinct executor threads, which one fast
  // thief stealing everything legitimately violates under machine load).
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> executors;
  std::atomic<int> done{0};
  pool.Submit([&pool, &mutex, &executors, &done] {
      std::vector<std::future<void>> subtasks;
      for (int i = 0; i < 32; ++i) {
        subtasks.push_back(pool.Submit([&mutex, &executors, &done] {
          {
            std::lock_guard<std::mutex> lock(mutex);
            executors.insert(std::this_thread::get_id());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          ++done;
        }));
      }
      for (auto& f : subtasks) f.get();
    }).get();
  EXPECT_EQ(done.load(), 32);
  EXPECT_GE(executors.size(), 1u);

  const ThreadPool::StatsSnapshot stats = pool.Stats();
  // Accounting invariant: after every future resolved, each submitted
  // task ran exactly once, somewhere.
  EXPECT_EQ(stats.tasks_submitted, 33u);
  EXPECT_EQ(stats.TotalExecuted(), 33u);
  // The spawner held its worker hostage, so all 32 subtasks were stolen.
  EXPECT_GE(stats.TotalSteals(), 32u);
  ASSERT_EQ(stats.workers.size(), 4u);
}

TEST(ThreadPoolTest, StatsAccountingMatchesSubmissions) {
  // The scheduling tallies are unconditional (no telemetry needed): after
  // every future resolves, submitted == executed and the per-worker split
  // sums to the total.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i; }));
  }
  for (auto& f : futures) f.get();
  const ThreadPool::StatsSnapshot stats = pool.Stats();
  EXPECT_EQ(stats.tasks_submitted, 100u);
  EXPECT_EQ(stats.TotalExecuted(), 100u);
  ASSERT_EQ(stats.workers.size(), 3u);
  uint64_t per_worker_sum = 0;
  for (const auto& worker : stats.workers) {
    per_worker_sum += worker.tasks_executed;
  }
  EXPECT_EQ(per_worker_sum, 100u);
  EXPECT_GE(stats.MaxDequeHighWater(), 1u);
}

TEST(ThreadPoolTest, PublishStatsWritesRegistryCounters) {
  if (!telemetry::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::SetEnabled(true);
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(pool.Submit([] {}));
  for (auto& f : futures) f.get();
  // Unique prefix: the registry is process-global and counters accumulate.
  pool.PublishStats("test_pool_publish");
  const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
  const auto* submitted =
      snapshot.FindCounter("test_pool_publish.tasks_submitted");
  const auto* executed =
      snapshot.FindCounter("test_pool_publish.tasks_executed");
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(submitted->value, 10u);
  EXPECT_EQ(executed->value, 10u);
  EXPECT_NE(snapshot.FindHistogram("test_pool_publish.worker.idle_nanos"),
            nullptr);
  // Submit-to-start latency was observed for every task (telemetry was on
  // when they were submitted).
  const auto* latency =
      snapshot.FindHistogram("pool.submit_to_start.nanos");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, 10u);
  telemetry::SetEnabled(false);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);

  // The worker survives the throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      });
    }
    // Destruction must complete every queued task before joining.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ClampsDegenerateSizes) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

class ResolveNumThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("ISOBAR_TEST_THREADS");
    if (env != nullptr) saved_ = env;
    unsetenv("ISOBAR_TEST_THREADS");
  }
  void TearDown() override {
    if (saved_.empty()) {
      unsetenv("ISOBAR_TEST_THREADS");
    } else {
      setenv("ISOBAR_TEST_THREADS", saved_.c_str(), 1);
    }
  }
  std::string saved_;
};

TEST_F(ResolveNumThreadsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveNumThreads(3), 3u);
  setenv("ISOBAR_TEST_THREADS", "7", 1);
  EXPECT_EQ(ResolveNumThreads(3), 3u);  // env only applies to requested==0
}

TEST_F(ResolveNumThreadsTest, EnvHookDrivesDefault) {
  setenv("ISOBAR_TEST_THREADS", "5", 1);
  EXPECT_EQ(ResolveNumThreads(0), 5u);
}

TEST_F(ResolveNumThreadsTest, InvalidEnvFallsBackToHardware) {
  setenv("ISOBAR_TEST_THREADS", "not-a-number", 1);
  EXPECT_GE(ResolveNumThreads(0), 1u);
  setenv("ISOBAR_TEST_THREADS", "0", 1);
  EXPECT_GE(ResolveNumThreads(0), 1u);
}

TEST_F(ResolveNumThreadsTest, CapsRunawayRequests) {
  EXPECT_LE(ResolveNumThreads(1000000), 256u);
  setenv("ISOBAR_TEST_THREADS", "99999", 1);
  EXPECT_LE(ResolveNumThreads(0), 256u);
}

}  // namespace
}  // namespace isobar
