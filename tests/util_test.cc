#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>

#include "util/bytes.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace isobar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  Status s = Status::Corruption("bad checksum");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "corruption: bad checksum");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Corruption("a"), Status::Corruption("a"));
  EXPECT_FALSE(Status::Corruption("a") == Status::Corruption("b"));
  EXPECT_FALSE(Status::Corruption("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

Status FailingOperation() { return Status::IOError("disk on fire"); }

Status Propagates() {
  ISOBAR_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreachable");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIOError);
}

Result<int> GiveSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  ISOBAR_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroAssigns) {
  int v = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&v).ok());
  EXPECT_EQ(v, 7);
}

TEST(Crc32cTest, KnownVectors) {
  // Canonical CRC-32C check value.
  const char* digits = "123456789";
  EXPECT_EQ(crc32c::Extend(0, reinterpret_cast<const uint8_t*>(digits), 9),
            0xE3069283u);
  // RFC 3720 (iSCSI) test vectors.
  uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c::Extend(0, zeros, 32), 0x8A9136AAu);
  uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(crc32c::Extend(0, ones, 32), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendIsIncremental) {
  uint8_t data[64];
  for (int i = 0; i < 64; ++i) data[i] = static_cast<uint8_t>(i * 7 + 3);
  const uint32_t whole = crc32c::Extend(0, data, 64);
  uint32_t split = crc32c::Extend(0, data, 17);
  split = crc32c::Extend(split, data + 17, 64 - 17);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, DistinguishesSingleBitFlip) {
  uint8_t data[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const uint32_t before = crc32c::Extend(0, data, 16);
  data[7] ^= 0x10;
  EXPECT_NE(before, crc32c::Extend(0, data, 16));
}

TEST(BytesTest, LittleEndianRoundTrip) {
  uint8_t buf[8];
  StoreLE16(buf, 0xBEEF);
  EXPECT_EQ(LoadLE16(buf), 0xBEEF);
  StoreLE32(buf, 0xDEADBEEFu);
  EXPECT_EQ(LoadLE32(buf), 0xDEADBEEFu);
  StoreLE64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(LoadLE64(buf), 0x0123456789ABCDEFull);
  EXPECT_EQ(buf[0], 0xEF);  // little-endian byte order on disk
  EXPECT_EQ(buf[7], 0x01);
}

TEST(BytesTest, AppendHelpersGrowBuffer) {
  Bytes out;
  AppendLE16(out, 0x1122);
  AppendLE32(out, 0x33445566u);
  AppendLE64(out, 0x778899AABBCCDDEEull);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(LoadLE16(out.data()), 0x1122);
  EXPECT_EQ(LoadLE32(out.data() + 2), 0x33445566u);
  EXPECT_EQ(LoadLE64(out.data() + 6), 0x778899AABBCCDDEEull);
}

TEST(BytesTest, AsBytesViewsTypedArray) {
  std::vector<uint32_t> values = {1, 2, 3};
  ByteSpan bytes = AsBytes(values);
  EXPECT_EQ(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[4], 2);
}

TEST(RandomTest, DeterministicForSeed) {
  Xoshiro256 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, NextBoundedRespectsBound) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RandomTest, GaussianHasRoughlyUnitSpread) {
  Xoshiro256 rng(31337);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, ThroughputZeroBytesIsZero) {
  Stopwatch sw;
  EXPECT_GE(sw.ThroughputMBps(0), 0.0);
  EXPECT_EQ(sw.ThroughputMBps(0), 0.0);
}

TEST(StopwatchTest, ThroughputFiniteOnShortInterval) {
  // Querying immediately after construction can see a ~0ns interval; the
  // elapsed time is clamped to 1ns so the result must stay finite (no
  // division by zero) and positive for a non-zero byte count.
  for (int i = 0; i < 100; ++i) {
    Stopwatch sw;
    const double mbps = sw.ThroughputMBps(1024);
    EXPECT_TRUE(std::isfinite(mbps));
    EXPECT_GT(mbps, 0.0);
  }
}

TEST(StopwatchTest, ElapsedNanosMonotonicAndMatchesSeconds) {
  Stopwatch sw;
  const int64_t a = sw.ElapsedNanos();
  EXPECT_GE(a, 0);
  // Burn a little time so the two clock reads are distinguishable.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const int64_t b = sw.ElapsedNanos();
  EXPECT_GE(b, a);
  const double seconds = sw.ElapsedSeconds();
  EXPECT_GE(seconds * 1e9, static_cast<double>(b) * 0.5);
}

TEST(StopwatchTest, ResetRestartsTheClock) {
  Stopwatch sw;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const int64_t before = sw.ElapsedNanos();
  sw.Reset();
  const int64_t after = sw.ElapsedNanos();
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace isobar
