#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "core/isobar.h"
#include "core/stream.h"
#include "datagen/registry.h"
#include "io/sink.h"
#include "util/random.h"

namespace isobar {
namespace {

Dataset HardDataset(uint64_t elements, const char* name = "gts_phi_l") {
  auto spec = FindDatasetSpec(name);
  auto dataset = GenerateDataset(**spec, elements);
  return std::move(*dataset);
}

CompressOptions SmallChunkOptions() {
  CompressOptions options;
  options.chunk_elements = 20000;
  options.eupa.sample_elements = 4096;
  return options;
}

TEST(StreamWriterTest, MatchesBatchCompressorByteForByte) {
  // With a fully forced pipeline the batch and streaming paths must make
  // identical per-chunk decisions; only the header count fields differ.
  const Dataset dataset = HardDataset(65000);
  CompressOptions options = SmallChunkOptions();
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kRow;

  const IsobarCompressor batch(options);
  auto batch_out = batch.Compress(dataset.bytes(), 8);
  ASSERT_TRUE(batch_out.ok());

  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(options, 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());

  ASSERT_EQ(stream_out.size(), batch_out->size());
  // Bytes past the header are identical; the header differs only in the
  // element/chunk count fields (16..31 and 32..39), which the stream
  // leaves as sentinels.
  EXPECT_TRUE(std::equal(stream_out.begin() + container::kHeaderSize,
                         stream_out.end(),
                         batch_out->begin() + container::kHeaderSize));
}

TEST(StreamWriterTest, StreamedContainerDecompresses) {
  const Dataset dataset = HardDataset(100000);
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto restored = IsobarCompressor::Decompress(stream_out);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, dataset.data);
}

TEST(StreamWriterTest, ArbitraryAppendGranularity) {
  // Dribble data in odd-sized pieces, including partial elements.
  const Dataset dataset = HardDataset(50000);
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);

  Xoshiro256 rng(7);
  size_t position = 0;
  while (position < dataset.data.size()) {
    const size_t take = std::min<size_t>(1 + rng.NextBounded(77777),
                                         dataset.data.size() - position);
    ASSERT_TRUE(writer.Append(dataset.bytes().subspan(position, take)).ok());
    position += take;
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto restored = IsobarCompressor::Decompress(stream_out);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dataset.data);
}

TEST(StreamWriterTest, SubChunkStreamWorks) {
  // Less than one chunk of data: the decision happens at Finish().
  const Dataset dataset = HardDataset(5000);
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto restored = IsobarCompressor::Decompress(stream_out);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dataset.data);
}

TEST(StreamWriterTest, EmptyStreamProducesValidContainer) {
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Finish().ok());
  auto restored = IsobarCompressor::Decompress(stream_out);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(StreamWriterTest, FinishIsIdempotentAndAppendAfterFinishFails) {
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(Bytes(80, 1)).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_TRUE(writer.finished());
  EXPECT_FALSE(writer.Append(Bytes(8, 1)).ok());
}

TEST(StreamWriterTest, MidElementFinishFails) {
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(Bytes(13, 1)).ok());  // 1.625 elements
  EXPECT_EQ(writer.Finish().code(), StatusCode::kInvalidArgument);
}

TEST(StreamWriterTest, InvalidConstructionReportsOnUse) {
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter bad_width(SmallChunkOptions(), 0, &sink);
  EXPECT_FALSE(bad_width.Append(Bytes(8, 0)).ok());
  IsobarStreamWriter null_sink(SmallChunkOptions(), 8, nullptr);
  EXPECT_FALSE(null_sink.Finish().ok());
}

TEST(StreamWriterTest, StatsAccumulate) {
  const Dataset dataset = HardDataset(60000);
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());
  const CompressionStats& stats = writer.stats();
  EXPECT_EQ(stats.input_bytes, dataset.data.size());
  EXPECT_EQ(stats.output_bytes, stream_out.size());
  EXPECT_EQ(stats.chunk_count, 3u);
  EXPECT_TRUE(stats.improvable);
  EXPECT_GT(stats.ratio(), 1.2);
}

TEST(StreamReaderTest, IteratesChunksOfBatchContainer) {
  const Dataset dataset = HardDataset(65000);
  const IsobarCompressor batch(SmallChunkOptions());
  auto compressed = batch.Compress(dataset.bytes(), 8);
  ASSERT_TRUE(compressed.ok());

  IsobarStreamReader reader(*compressed);
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_EQ(reader.header().element_count, 65000u);

  Bytes reassembled, chunk;
  int chunks = 0;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
    ++chunks;
  }
  EXPECT_EQ(chunks, 4);  // 65000 / 20000 -> 3 full + 1 short
  EXPECT_EQ(reassembled, dataset.data);
}

TEST(StreamReaderTest, IteratesChunksOfStreamedContainer) {
  const Dataset dataset = HardDataset(45000);
  Bytes stream_out;
  MemorySink sink(&stream_out);
  IsobarStreamWriter writer(SmallChunkOptions(), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());

  IsobarStreamReader reader(stream_out);
  ASSERT_TRUE(reader.Init().ok());
  // The streamed header itself holds sentinels, but the v2 chunk-index
  // footer supplies the real totals at Init().
  EXPECT_TRUE(reader.has_chunk_index());
  EXPECT_EQ(reader.header().element_count, 45000u);

  Bytes reassembled, chunk;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(reassembled, dataset.data);
}

TEST(StreamReaderTest, SkipChunkSeeksWithoutDecoding) {
  const Dataset dataset = HardDataset(80000);
  const IsobarCompressor batch(SmallChunkOptions());
  auto compressed = batch.Compress(dataset.bytes(), 8);
  ASSERT_TRUE(compressed.ok());

  // Skip the first two 20000-element chunks, decode the third.
  IsobarStreamReader reader(*compressed);
  ASSERT_TRUE(reader.Init().ok());
  for (int i = 0; i < 2; ++i) {
    auto more = reader.SkipChunk();
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
  }
  EXPECT_EQ(reader.chunks_read(), 2u);
  Bytes chunk;
  auto more = reader.NextChunk(&chunk);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  const ByteSpan expected = dataset.bytes().subspan(2 * 20000 * 8, 20000 * 8);
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), expected.begin()));
}

TEST(StreamReaderTest, SkipAllChunksReachesCleanEnd) {
  const Dataset dataset = HardDataset(45000);
  const IsobarCompressor batch(SmallChunkOptions());
  auto compressed = batch.Compress(dataset.bytes(), 8);
  ASSERT_TRUE(compressed.ok());

  IsobarStreamReader reader(*compressed);
  ASSERT_TRUE(reader.Init().ok());
  int skipped = 0;
  for (;;) {
    auto more = reader.SkipChunk();
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++skipped;
  }
  EXPECT_EQ(skipped, 3);  // 2 full + 1 short chunk
}

TEST(StreamReaderTest, RequiresInit) {
  Bytes dummy(100, 0);
  IsobarStreamReader reader(dummy);
  Bytes chunk;
  EXPECT_FALSE(reader.NextChunk(&chunk).ok());
}

TEST(StreamReaderTest, DetectsCorruptChunkMidStream) {
  const Dataset dataset = HardDataset(65000);
  const IsobarCompressor batch(SmallChunkOptions());
  auto compressed = batch.Compress(dataset.bytes(), 8);
  ASSERT_TRUE(compressed.ok());
  Bytes mutated = *compressed;
  // Damage the last chunk's payload. (Note: not every bit matters —
  // deflate's final-block padding bits are don't-care — so hit the last
  // byte before the index footer, which is always load-bearing: solver
  // checksum or raw data.)
  size_t header_offset = 0;
  auto header = container::ParseHeader(mutated, &header_offset);
  ASSERT_TRUE(header.ok());
  const size_t payload_end =
      mutated.size() - container::FooterBytes(header->chunk_count);
  mutated[payload_end - 1] ^= 0x20;

  IsobarStreamReader reader(mutated);
  ASSERT_TRUE(reader.Init().ok());
  Bytes chunk;
  Status last;
  for (;;) {
    auto more = reader.NextChunk(&chunk);
    if (!more.ok()) {
      last = more.status();
      break;
    }
    if (!*more) break;
  }
  EXPECT_EQ(last.code(), StatusCode::kCorruption);
}

TEST(SinkTest, CountingSinkCounts) {
  Bytes buffer;
  MemorySink memory(&buffer);
  CountingSink counting(&memory);
  ASSERT_TRUE(counting.Write(Bytes(100, 1)).ok());
  ASSERT_TRUE(counting.Write(Bytes(23, 2)).ok());
  EXPECT_EQ(counting.bytes_written(), 123u);
  EXPECT_EQ(buffer.size(), 123u);
}

TEST(SinkTest, ThrottledSinkAdvancesSimulatedClock) {
  ThrottledSink sink(/*bandwidth_mbps=*/100.0);
  ASSERT_TRUE(sink.Write(Bytes(50'000'000 / 100, 0)).ok());  // 0.5 MB
  EXPECT_NEAR(sink.simulated_seconds(), 0.005, 1e-9);
  ASSERT_TRUE(sink.Write(Bytes(500'000, 0)).ok());
  EXPECT_NEAR(sink.simulated_seconds(), 0.010, 1e-9);
  EXPECT_EQ(sink.bytes_written(), 1'000'000u);
}

TEST(SinkTest, FileSinkWritesFile) {
  const std::string path = ::testing::TempDir() + "/isobar_sink_test.bin";
  FileSink sink(path);
  ASSERT_TRUE(sink.status().ok());
  ASSERT_TRUE(sink.Write(Bytes{1, 2, 3, 4}).ok());
  ASSERT_TRUE(sink.Close().ok());
  std::ifstream in(path, std::ios::binary);
  Bytes content((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  EXPECT_EQ(content, (Bytes{1, 2, 3, 4}));
  EXPECT_FALSE(sink.Write(Bytes{5}).ok());  // closed
}

}  // namespace
}  // namespace isobar
