#include <gtest/gtest.h>

#include "pfor/pfor_codec.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes WordsToBytes(const std::vector<uint64_t>& values) {
  Bytes out;
  out.reserve(values.size() * 8);
  for (uint64_t v : values) AppendLE64(out, v);
  return out;
}

std::vector<uint64_t> SmallRangeValues(size_t n, uint64_t range,
                                       uint64_t seed) {
  std::vector<uint64_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& x : v) x = 1'000'000 + rng.NextBounded(range);
  return v;
}

class PforRoundTripTest : public ::testing::TestWithParam<PforMode> {};

TEST_P(PforRoundTripTest, SmallRangeValuesRoundTrip) {
  const PforCodec codec(GetParam());
  const Bytes input = WordsToBytes(SmallRangeValues(1000, 4096, 1));
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
  EXPECT_LT(compressed.size(), input.size() / 3);  // ~12 bits of 64 used
}

TEST_P(PforRoundTripTest, FullRangeRandomRoundTrip) {
  const PforCodec codec(GetParam());
  std::vector<uint64_t> values(777);
  Xoshiro256 rng(2);
  for (auto& v : values) v = rng.Next();
  const Bytes input = WordsToBytes(values);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST_P(PforRoundTripTest, OutliersBecomeExceptions) {
  // Mostly small offsets with rare huge spikes: the patched-exception
  // path must carry the spikes while the block stays narrow.
  const PforCodec codec(GetParam());
  std::vector<uint64_t> values = SmallRangeValues(1024, 256, 3);
  for (size_t i = 100; i < values.size(); i += 100) {
    values[i] = 0xFFFF'FFFF'FFFF'0000ull + i;
  }
  const Bytes input = WordsToBytes(values);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST_P(PforRoundTripTest, NonBlockMultipleCountRoundTrips) {
  const PforCodec codec(GetParam());
  for (size_t n : {1, 2, 127, 128, 129, 255, 257}) {
    const Bytes input = WordsToBytes(SmallRangeValues(n, 1000, n));
    Bytes compressed, out;
    ASSERT_TRUE(codec.Compress(input, &compressed).ok()) << n;
    ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok()) << n;
    EXPECT_EQ(out, input) << n;
  }
}

TEST_P(PforRoundTripTest, EmptyInputRoundTrips) {
  const PforCodec codec(GetParam());
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress({}, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, PforRoundTripTest,
                         ::testing::Values(PforMode::kFor, PforMode::kDelta),
                         [](const auto& info) {
                           return info.param == PforMode::kFor ? "for"
                                                               : "delta";
                         });

TEST(PforCodecTest, DeltaModeWinsOnArithmeticSequences) {
  // Strictly increasing ids with small strides: after delta + zigzag the
  // offsets are tiny; plain FOR must store the full spread of each block.
  std::vector<uint64_t> values(4096);
  Xoshiro256 rng(5);
  uint64_t v = 1ull << 40;
  for (auto& x : values) {
    v += 1 + rng.NextBounded(7);
    x = v;
  }
  const Bytes input = WordsToBytes(values);
  Bytes for_out, delta_out;
  ASSERT_TRUE(PforCodec(PforMode::kFor).Compress(input, &for_out).ok());
  ASSERT_TRUE(PforCodec(PforMode::kDelta).Compress(input, &delta_out).ok());
  EXPECT_LT(delta_out.size(), for_out.size() / 2);
}

TEST(PforCodecTest, DeltaHandlesDecreasingSequences) {
  std::vector<uint64_t> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1'000'000'000ull - i * 17;
  }
  const Bytes input = WordsToBytes(values);
  const PforCodec codec(PforMode::kDelta);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
  EXPECT_LT(compressed.size(), input.size() / 4);
}

TEST(PforCodecTest, ConstantValuesPackToZeroBits) {
  const PforCodec codec(PforMode::kFor);
  const Bytes input = WordsToBytes(std::vector<uint64_t>(1280, 42));
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  // 10 blocks x 10-byte headers + mode byte, no packed payload at b=0.
  EXPECT_EQ(compressed.size(), 1 + 10 * 10u);
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(PforCodecTest, MisalignedInputRejected) {
  const PforCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Compress(Bytes(12, 0), &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.Decompress(Bytes(12, 0), 12, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(PforCodecTest, CorruptStreamsDetected) {
  const PforCodec codec;
  const Bytes input = WordsToBytes(SmallRangeValues(300, 512, 7));
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes out;

  // Truncations at several depths.
  for (size_t cut : {compressed.size() - 1, compressed.size() / 2, size_t{1},
                     size_t{0}}) {
    ByteSpan prefix(compressed.data(), cut);
    EXPECT_FALSE(codec.Decompress(prefix, input.size(), &out).ok())
        << "cut " << cut;
  }
  // Trailing garbage.
  Bytes padded = compressed;
  padded.push_back(0x00);
  EXPECT_EQ(codec.Decompress(padded, input.size(), &out).code(),
            StatusCode::kCorruption);
  // Unknown mode byte.
  Bytes bad_mode = compressed;
  bad_mode[0] = 9;
  EXPECT_EQ(codec.Decompress(bad_mode, input.size(), &out).code(),
            StatusCode::kCorruption);
  // Invalid bit width in the first block header.
  Bytes bad_bits = compressed;
  bad_bits[1] = 65;
  EXPECT_EQ(codec.Decompress(bad_bits, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(PforCodecTest, ExceptionIndexOutOfRangeDetected) {
  // Hand-craft a final short block (1 value) whose exception index points
  // past the block.
  Bytes stream;
  stream.push_back(0);   // mode kFor
  stream.push_back(0);   // bits = 0
  stream.push_back(1);   // one exception
  AppendLE64(stream, 0);  // base
  stream.push_back(5);   // exception index 5 >= count 1
  AppendLE64(stream, 123);
  const PforCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(stream, 8, &out).code(),
            StatusCode::kCorruption);
}

TEST(PforCodecTest, WideBitWidthsRoundTrip) {
  // Offsets spanning ~2^60 force bit widths near the 64-bit ceiling,
  // exercising the 128-bit accumulator paths of the bit packer.
  std::vector<uint64_t> values(512);
  Xoshiro256 rng(11);
  for (auto& v : values) v = rng.Next() >> 3;  // 61-bit values
  const Bytes input = WordsToBytes(values);
  const PforCodec codec(PforMode::kFor);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

}  // namespace
}  // namespace isobar
