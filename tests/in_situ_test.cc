#include <gtest/gtest.h>

#include <algorithm>

#include "core/stream.h"
#include "datagen/registry.h"
#include "io/in_situ.h"
#include "io/sink.h"

namespace isobar {
namespace {

Dataset HardDataset(uint64_t elements) {
  auto spec = FindDatasetSpec("gts_chkp_zion");
  auto dataset = GenerateDataset(**spec, elements);
  return std::move(*dataset);
}

CompressOptions Options() {
  CompressOptions options;
  options.chunk_elements = 25000;
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kRow;
  return options;
}

TEST(InSituTest, RawStrategyIsPureTransfer) {
  const Dataset dataset = HardDataset(100000);
  auto report = SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                    dataset.bytes(), 8, 100.0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->raw_bytes, dataset.data.size());
  EXPECT_EQ(report->stored_bytes, dataset.data.size());
  EXPECT_DOUBLE_EQ(report->compute_seconds, 0.0);
  // 800000 bytes at 100 MB/s = 8 ms.
  EXPECT_NEAR(report->transfer_seconds, 0.008, 1e-9);
  EXPECT_NEAR(report->serial_seconds(), 0.008, 1e-9);
  EXPECT_NEAR(report->overlapped_seconds, 0.008, 1e-9);
}

TEST(InSituTest, IsobarStoresFewerBytes) {
  const Dataset dataset = HardDataset(100000);
  auto raw = SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                 dataset.bytes(), 8, 100.0);
  auto isobar = SimulateInSituWrite(WriteStrategy::kIsobar, Options(),
                                    dataset.bytes(), 8, 100.0);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(isobar.ok());
  EXPECT_LT(isobar->stored_bytes, raw->stored_bytes * 8 / 10);
  EXPECT_GT(isobar->compute_seconds, 0.0);
}

TEST(InSituTest, OverlappedNeverSlowerThanSerial) {
  const Dataset dataset = HardDataset(150000);
  for (WriteStrategy strategy :
       {WriteStrategy::kRaw, WriteStrategy::kZlib, WriteStrategy::kIsobar}) {
    auto report = SimulateInSituWrite(strategy, Options(), dataset.bytes(),
                                      8, 50.0);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->overlapped_seconds, report->serial_seconds() + 1e-12)
        << WriteStrategyToString(strategy);
    // And never faster than either stage alone.
    EXPECT_GE(report->overlapped_seconds,
              std::max(report->compute_seconds, report->transfer_seconds) -
                  1e-12)
        << WriteStrategyToString(strategy);
  }
}

TEST(InSituTest, CompressionWinsOnSlowLinksLosesOnFastOnes) {
  // The paper's motivating imbalance, as a crossover assertion: on a
  // constrained link ISOBAR beats raw end to end; on an (effectively)
  // infinite link raw wins because compression time is all that is left.
  // The slow link speed is derived from a measured probe run instead of
  // being fixed: real compute seconds inflate by an order of magnitude
  // under sanitizers or machine load, so a hardcoded 1 MB/s link could
  // still lose the race on a slow enough build. Sizing the link so the
  // raw transfer takes >= 20x the probe's compute time makes the
  // crossover a structural property of the simulation, not a timing bet.
  const Dataset dataset = HardDataset(200000);
  auto probe = SimulateInSituWrite(WriteStrategy::kIsobar, Options(),
                                   dataset.bytes(), 8, 100.0);
  ASSERT_TRUE(probe.ok());
  ASSERT_GT(probe->compute_seconds, 0.0);
  const double raw_mb = static_cast<double>(probe->raw_bytes) / 1e6;
  const double slow_mbps =
      std::min(1.0, raw_mb / (20.0 * probe->compute_seconds));
  auto raw_slow = SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                      dataset.bytes(), 8, slow_mbps);
  auto iso_slow = SimulateInSituWrite(WriteStrategy::kIsobar, Options(),
                                      dataset.bytes(), 8, slow_mbps);
  auto raw_fast = SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                      dataset.bytes(), 8, 1e7);
  auto iso_fast = SimulateInSituWrite(WriteStrategy::kIsobar, Options(),
                                      dataset.bytes(), 8, 1e7);
  ASSERT_TRUE(raw_slow.ok());
  ASSERT_TRUE(iso_slow.ok());
  ASSERT_TRUE(raw_fast.ok());
  ASSERT_TRUE(iso_fast.ok());
  EXPECT_LT(iso_slow->overlapped_seconds, raw_slow->overlapped_seconds);
  EXPECT_GT(iso_fast->overlapped_seconds, raw_fast->overlapped_seconds);
}

TEST(InSituTest, StoredIsobarStreamIsAValidContainer) {
  // Independent check that the simulated write produces exactly the bytes
  // the streaming writer would: stored_bytes equals a real streamed run.
  const Dataset dataset = HardDataset(60000);
  auto report = SimulateInSituWrite(WriteStrategy::kIsobar, Options(),
                                    dataset.bytes(), 8, 100.0);
  ASSERT_TRUE(report.ok());

  Bytes container;
  MemorySink sink(&container);
  IsobarStreamWriter writer(Options(), 8, &sink);
  ASSERT_TRUE(writer.Append(dataset.bytes()).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(report->stored_bytes, container.size());
}

TEST(InSituTest, EmptyDataset) {
  auto report =
      SimulateInSituWrite(WriteStrategy::kIsobar, Options(), {}, 8, 100.0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->raw_bytes, 0u);
  // An empty v2 stream is a bare header plus a zero-entry index footer.
  EXPECT_EQ(report->stored_bytes,
            container::kHeaderSize + container::FooterBytes(0));
}

TEST(InSituTest, InvalidArgumentsRejected) {
  const Dataset dataset = HardDataset(1000);
  EXPECT_FALSE(SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                   dataset.bytes(), 8, 0.0)
                   .ok());
  EXPECT_FALSE(SimulateInSituWrite(WriteStrategy::kRaw, Options(),
                                   dataset.bytes(), 0, 100.0)
                   .ok());
  CompressOptions bad = Options();
  bad.chunk_elements = 0;
  EXPECT_FALSE(
      SimulateInSituWrite(WriteStrategy::kRaw, bad, dataset.bytes(), 8, 100.0)
          .ok());
}

}  // namespace
}  // namespace isobar
