#include <gtest/gtest.h>

#include <cmath>

#include "compressors/huffman_codec.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes SkewedBytes(size_t n, uint64_t seed) {
  // Geometric-ish distribution: heavy skew an entropy coder can exploit.
  Bytes out;
  out.reserve(n);
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = rng.Next();
    int symbol = 0;
    while ((r & 1u) && symbol < 12) {
      ++symbol;
      r >>= 1;
    }
    out.push_back(static_cast<uint8_t>(symbol));
  }
  return out;
}

Bytes RandomBytes(size_t n, uint64_t seed) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<uint8_t>(rng.Next());
  return out;
}

TEST(HuffmanCodecTest, EmptyRoundTrip) {
  const HuffmanCodec codec;
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress({}, &compressed).ok());
  EXPECT_EQ(compressed.size(), 1u);
  ASSERT_TRUE(codec.Decompress(compressed, 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(HuffmanCodecTest, SingleSymbolRoundTrip) {
  const HuffmanCodec codec;
  const Bytes input(100000, 0x5C);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  EXPECT_EQ(compressed.size(), 2u);  // flag + symbol: maximal compression
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(HuffmanCodecTest, SingleByteRoundTrip) {
  const HuffmanCodec codec;
  const Bytes input = {0xAB};
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, 1, &out).ok());
  EXPECT_EQ(out, input);
}

TEST(HuffmanCodecTest, TwoSymbolRoundTrip) {
  const HuffmanCodec codec;
  Bytes input;
  for (int i = 0; i < 999; ++i) input.push_back(i % 3 == 0 ? 7 : 9);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
  // 1 bit per symbol + 257-byte header.
  EXPECT_LE(compressed.size(), 999 / 8 + 260);
}

TEST(HuffmanCodecTest, RandomBytesRoundTrip) {
  const HuffmanCodec codec;
  const Bytes input = RandomBytes(50000, 1);
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(HuffmanCodecTest, SkewedDataApproachesEntropyBound) {
  const HuffmanCodec codec;
  const Bytes input = SkewedBytes(200000, 2);
  // Empirical entropy of the input.
  std::array<uint64_t, 256> freq{};
  for (uint8_t b : input) ++freq[b];
  double entropy_bits = 0.0;
  for (uint64_t f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / input.size();
    entropy_bits -= p * std::log2(p);
  }
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  const double bits_per_symbol =
      8.0 * (compressed.size() - 257.0) / input.size();
  // Huffman is within one bit of entropy; for this distribution much less.
  EXPECT_LT(bits_per_symbol, entropy_bits + 0.25);
  EXPECT_GE(bits_per_symbol, entropy_bits - 1e-9);
  Bytes out;
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

TEST(HuffmanCodecTest, DeterministicOutput) {
  const HuffmanCodec codec;
  const Bytes input = SkewedBytes(10000, 3);
  Bytes a, b;
  ASSERT_TRUE(codec.Compress(input, &a).ok());
  ASSERT_TRUE(codec.Compress(input, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(HuffmanCodecTest, SingleSymbolClaimingZeroBytesIsCorruption) {
  const HuffmanCodec codec;
  // {flag=single-symbol, symbol} claiming zero original bytes: the
  // encoder never produces this shape (empty input gets the empty flag),
  // so it must be rejected as corruption rather than decoded as empty.
  const Bytes forged = {0x02, 0x5C};
  Bytes out;
  const auto status = codec.Decompress(forged, 0, &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(HuffmanCodecTest, TruncatedBitstreamIsCorruption) {
  const HuffmanCodec codec;
  const Bytes input = SkewedBytes(10000, 4);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes truncated(compressed.begin(), compressed.end() - 5);
  Bytes out;
  EXPECT_EQ(codec.Decompress(truncated, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(HuffmanCodecTest, TrailingBytesAreCorruption) {
  const HuffmanCodec codec;
  const Bytes input = SkewedBytes(10000, 5);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  compressed.push_back(0xFF);
  Bytes out;
  EXPECT_EQ(codec.Decompress(compressed, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(HuffmanCodecTest, InvalidLengthTableIsCorruption) {
  // Craft a header whose Kraft sum is not 1 (two symbols of length 3).
  Bytes stream(257, 0);
  stream[0] = 0;
  stream[1 + 'a'] = 3;
  stream[1 + 'b'] = 3;
  stream.push_back(0x00);
  const HuffmanCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(stream, 10, &out).code(),
            StatusCode::kCorruption);
}

TEST(HuffmanCodecTest, UnknownFlagsRejected) {
  const HuffmanCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(Bytes{0x80}, 0, &out).code(),
            StatusCode::kCorruption);
}

TEST(HuffmanCodecTest, MalformedSpecialStreamsRejected) {
  const HuffmanCodec codec;
  Bytes out;
  // Empty-stream flag with payload.
  EXPECT_FALSE(codec.Decompress(Bytes{0x01, 0x00}, 0, &out).ok());
  // Empty-stream flag but nonzero expected size.
  EXPECT_FALSE(codec.Decompress(Bytes{0x01}, 5, &out).ok());
  // Single-symbol flag without the symbol byte.
  EXPECT_FALSE(codec.Decompress(Bytes{0x02}, 5, &out).ok());
  // Truncated length table.
  EXPECT_FALSE(codec.Decompress(Bytes(100, 0), 5, &out).ok());
}

TEST(HuffmanCodecTest, AllSymbolsPresentRoundTrip) {
  // Uniform coverage of all 256 symbols exercises the full table paths.
  Bytes input;
  for (int round = 0; round < 64; ++round) {
    for (int s = 0; s < 256; ++s) input.push_back(static_cast<uint8_t>(s));
  }
  const HuffmanCodec codec;
  Bytes compressed, out;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &out).ok());
  EXPECT_EQ(out, input);
}

}  // namespace
}  // namespace isobar
