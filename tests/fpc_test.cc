#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fpc/fpc_codec.h"
#include "fpc/predictor.h"
#include "util/random.h"

namespace isobar {
namespace {

Bytes DoublesToBytes(const std::vector<double>& values) {
  Bytes out;
  out.reserve(values.size() * 8);
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    AppendLE64(out, bits);
  }
  return out;
}

std::vector<double> SmoothSeries(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 1.5 + 0.25 * std::sin(static_cast<double>(i) * 0.001);
  }
  return v;
}

Bytes RandomWords(size_t n, uint64_t seed) {
  Bytes out;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) AppendLE64(out, rng.Next());
  return out;
}

// ---------------------------------------------------------------------------
// Predictors.

TEST(FcmPredictorTest, LearnsRepeatingSequence) {
  FcmPredictor fcm(10);
  // High bits must differ: the FCM context hash keys on the top 16 bits of
  // each value, as the values it targets are IEEE doubles.
  const uint64_t pattern[] = {10ull << 48, 20ull << 48, 30ull << 48};
  // Warm up: after seeing the cycle a few times, FCM predicts it exactly.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t v : pattern) fcm.Update(v);
  }
  int correct = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t v : pattern) {
      if (fcm.Predict() == v) ++correct;
      fcm.Update(v);
    }
  }
  EXPECT_EQ(correct, 9);
}

TEST(FcmPredictorTest, ResetForgets) {
  FcmPredictor fcm(8);
  for (int i = 0; i < 10; ++i) fcm.Update(777);
  EXPECT_EQ(fcm.Predict(), 777u);
  fcm.Reset();
  EXPECT_EQ(fcm.Predict(), 0u);
}

TEST(DfcmPredictorTest, LearnsArithmeticSequence) {
  // DFCM stores strides: a pure arithmetic progression becomes perfectly
  // predictable even though every value is new (FCM cannot do this).
  DfcmPredictor dfcm(10);
  uint64_t v = 1000;
  for (int i = 0; i < 8; ++i) {
    dfcm.Update(v);
    v += 17;
  }
  int correct = 0;
  for (int i = 0; i < 16; ++i) {
    if (dfcm.Predict() == v) ++correct;
    dfcm.Update(v);
    v += 17;
  }
  EXPECT_GE(correct, 14);
}

TEST(DfcmPredictorTest, ResetForgets) {
  DfcmPredictor dfcm(8);
  for (int i = 0; i < 10; ++i) dfcm.Update(i * 100);
  dfcm.Reset();
  EXPECT_EQ(dfcm.Predict(), 0u);
}

// ---------------------------------------------------------------------------
// Codec round trips.

class FpcRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FpcRoundTripTest, RandomWordsRoundTrip) {
  const FpcCodec codec(GetParam());
  const Bytes input = RandomWords(5000, GetParam());
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST_P(FpcRoundTripTest, SmoothDoublesRoundTrip) {
  const FpcCodec codec(GetParam());
  const Bytes input = DoublesToBytes(SmoothSeries(5001));  // odd count
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(TableSizes, FpcRoundTripTest,
                         ::testing::Values(8, 12, 16, 20));

TEST(FpcCodecTest, EmptyInputRoundTrips) {
  const FpcCodec codec;
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress({}, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, 0, &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(FpcCodecTest, SingleValueRoundTrips) {
  const FpcCodec codec;
  Bytes input;
  AppendLE64(input, 0xDEADBEEFCAFEF00Dull);
  Bytes compressed, output;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  ASSERT_TRUE(codec.Decompress(compressed, 8, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(FpcCodecTest, ConstantSeriesCompressesHard) {
  const FpcCodec codec;
  Bytes input = DoublesToBytes(std::vector<double>(10000, 3.14159));
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  // Every value after the first is perfectly predicted: ~0.5 byte each.
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(FpcCodecTest, SmoothBeatsRandom) {
  const FpcCodec codec;
  Bytes smooth = DoublesToBytes(SmoothSeries(20000));
  Bytes random = RandomWords(20000, 9);
  Bytes cs, cr;
  ASSERT_TRUE(codec.Compress(smooth, &cs).ok());
  ASSERT_TRUE(codec.Compress(random, &cr).ok());
  EXPECT_LT(cs.size(), cr.size());
}

TEST(FpcCodecTest, MisalignedInputRejected) {
  const FpcCodec codec;
  Bytes input(12, 0);
  Bytes out;
  EXPECT_EQ(codec.Compress(input, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(codec.Decompress(input, 12, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(FpcCodecTest, TruncatedStreamIsCorruption) {
  const FpcCodec codec;
  const Bytes input = RandomWords(100, 2);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  Bytes truncated(compressed.begin(), compressed.end() - 3);
  Bytes out;
  EXPECT_EQ(codec.Decompress(truncated, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(FpcCodecTest, TrailingGarbageIsCorruption) {
  const FpcCodec codec;
  const Bytes input = RandomWords(100, 2);
  Bytes compressed;
  ASSERT_TRUE(codec.Compress(input, &compressed).ok());
  compressed.push_back(0xAA);
  Bytes out;
  EXPECT_EQ(codec.Decompress(compressed, input.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(FpcCodecTest, InvalidTableBitsInStreamIsCorruption) {
  Bytes stream = {0xFF, 0x00};
  const FpcCodec codec;
  Bytes out;
  EXPECT_EQ(codec.Decompress(stream, 8, &out).code(), StatusCode::kCorruption);
}

TEST(FpcCodecTest, DifferentTableSizesInteroperate) {
  // Decompression reads the table size from the stream, so a codec
  // configured differently still decodes correctly.
  const Bytes input = DoublesToBytes(SmoothSeries(3000));
  Bytes compressed;
  ASSERT_TRUE(FpcCodec(12).Compress(input, &compressed).ok());
  Bytes output;
  ASSERT_TRUE(FpcCodec(20).Decompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

}  // namespace
}  // namespace isobar
