#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"

namespace isobar::telemetry {
namespace {

// --- Minimal strict JSON syntax checker ----------------------------------
// The exporters promise RFC 8259 output; this walker accepts exactly the
// value grammar (no trailing commas, no bare words, no NaN/Infinity) so a
// malformed export fails the round-trip tests here rather than in
// downstream tooling.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(text_[pos_])) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) return false;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) return false;
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(text_[pos_])) return false;
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\":[1,2.5,-3e-2,true,null,\"x\\n\"]}"));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\":nan}"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
}

// Enables telemetry + tracing with pristine global state, restoring the
// disabled default on exit so unrelated tests never observe leftovers.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    SetEnabled(true);
    TraceRecorder::Global().SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
    SpanLog::Global().Clear();
    TraceRecorder::Global().Clear();
  }

  void TearDown() override {
    if (!kCompiledIn) return;
    SetEnabled(false);
    TraceRecorder::Global().SetEnabled(false);
    MetricsRegistry::Global().ResetAll();
    SpanLog::Global().Clear();
    TraceRecorder::Global().Clear();
    SpanLog::Global().set_capacity(8192);
    TraceRecorder::Global().set_max_chunks_per_pipeline(4096);
  }
};

TEST_F(TelemetryTest, CounterAddsAndResets) {
  Counter& c = GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, CounterIgnoredWhileDisabled) {
  Counter& c = GetCounter("test.disabled_counter");
  SetEnabled(false);
  c.Add(100);
  EXPECT_EQ(c.value(), 0u);
  SetEnabled(true);
  c.Add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST_F(TelemetryTest, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = GetCounter("test.same");
  Counter& b = GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = GetHistogram("test.same_h");
  Histogram& h2 = GetHistogram("test.same_h");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(TelemetryTest, HistogramTracksCountSumMinMax) {
  Histogram& h = GetHistogram("test.histogram");
  h.Observe(10);
  h.Observe(1000);
  h.Observe(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1013u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 1013.0 / 3.0, 1e-12);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST_F(TelemetryTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);   // [1, 2)
  EXPECT_EQ(Histogram::BucketFor(2), 2);   // [2, 4)
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);   // [4, 8)
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);

  Histogram& h = GetHistogram("test.buckets");
  h.Observe(0);
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
}

TEST_F(TelemetryTest, HistogramIsThreadSafe) {
  Histogram& h = GetHistogram("test.threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), static_cast<uint64_t>(kThreads) * kPerThread * 7);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
}

TEST_F(TelemetryTest, PercentileOfEmptyHistogramIsZero) {
  Histogram& h = GetHistogram("test.pct_empty");
  h.Reset();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* s = snapshot.FindHistogram("test.pct_empty");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s->Percentile(0.99), 0.0);
}

TEST_F(TelemetryTest, PercentileClampsToObservedRange) {
  // All observations land in one bucket ([64, 128)): interpolation inside
  // the bucket must clamp to the exact observed min/max, not report a
  // value that never occurred.
  Histogram& h = GetHistogram("test.pct_single_bucket");
  h.Reset();
  for (int i = 0; i < 1000; ++i) h.Observe(64);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* s =
      snapshot.FindHistogram("test.pct_single_bucket");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(0.0), 64.0);
  EXPECT_DOUBLE_EQ(s->Percentile(0.5), 64.0);
  EXPECT_DOUBLE_EQ(s->Percentile(1.0), 64.0);
}

TEST_F(TelemetryTest, PercentileOfAllZerosIsZero) {
  Histogram& h = GetHistogram("test.pct_zeros");
  h.Reset();
  for (int i = 0; i < 10; ++i) h.Observe(0);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* s = snapshot.FindHistogram("test.pct_zeros");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s->Percentile(0.99), 0.0);
}

TEST_F(TelemetryTest, PercentileSkewedTailLandsInTopBucket) {
  // Nine 1s and one 1024: the median sits in the ones, p99 must reach the
  // outlier (and clamp to it, not to the outlier's bucket upper bound).
  Histogram& h = GetHistogram("test.pct_skew");
  h.Reset();
  for (int i = 0; i < 9; ++i) h.Observe(1);
  h.Observe(1024);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* s = snapshot.FindHistogram("test.pct_skew");
  ASSERT_NE(s, nullptr);
  // The median interpolates inside the [1, 2) bucket holding the nine 1s.
  EXPECT_GE(s->Percentile(0.5), 1.0);
  EXPECT_LT(s->Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s->Percentile(0.99), 1024.0);
}

TEST_F(TelemetryTest, PercentilesAreMonotonicAndBounded) {
  Histogram& h = GetHistogram("test.pct_spread");
  h.Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* s = snapshot.FindHistogram("test.pct_spread");
  ASSERT_NE(s, nullptr);
  const double p50 = s->Percentile(0.50);
  const double p90 = s->Percentile(0.90);
  const double p99 = s->Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Power-of-two buckets bound the error to the holding bucket: the true
  // median 500 lives in [256, 1024).
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(s->Percentile(-0.5), s->Percentile(0.0));
  EXPECT_DOUBLE_EQ(s->Percentile(2.0), s->Percentile(1.0));
}

TEST_F(TelemetryTest, ExportersCarryPercentiles) {
  Histogram& h = GetHistogram("test.pct_export");
  h.Reset();
  h.Observe(100);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string json = MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  const std::string csv = MetricsToCsv(snapshot);
  EXPECT_NE(csv.find("kind,name,count,sum,min,max,mean,p50,p90,p99"),
            std::string::npos);
}

TEST_F(TelemetryTest, SnapshotAndDelta) {
  GetCounter("test.delta").Add(10);
  GetHistogram("test.delta_h").Observe(100);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  GetCounter("test.delta").Add(7);
  GetHistogram("test.delta_h").Observe(50);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();

  const MetricsSnapshot delta = Delta(before, after);
  const CounterSnapshot* c = delta.FindCounter("test.delta");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 7u);
  const HistogramSnapshot* h = delta.FindHistogram("test.delta_h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 50u);
}

TEST_F(TelemetryTest, SpansNestViaThreadLocalStack) {
  {
    ScopedSpan outer("unit.outer");
    {
      ScopedSpan inner("unit.inner");
      ScopedSpan innermost("unit.innermost");
      EXPECT_TRUE(innermost.active());
    }
  }
  const std::vector<SpanRecord> spans = SpanLog::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Spans close innermost-first.
  const SpanRecord& innermost = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& outer = spans[2];
  EXPECT_EQ(outer.name, "unit.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.name, "unit.inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(innermost.name, "unit.innermost");
  EXPECT_EQ(innermost.depth, 2);
  EXPECT_EQ(innermost.parent_id, inner.id);
  EXPECT_GE(outer.duration_nanos, inner.duration_nanos);

  // Each span also aggregated into its latency histogram.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* h = snapshot.FindHistogram("span.unit.outer.nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST_F(TelemetryTest, DisabledSpansAreInert) {
  SetEnabled(false);
  {
    ScopedSpan span("unit.disabled");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.ElapsedNanos(), 0);
  }
  EXPECT_TRUE(SpanLog::Global().Snapshot().empty());
}

TEST_F(TelemetryTest, SpanLogIsBounded) {
  SpanLog::Global().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("unit.bounded");
  }
  EXPECT_EQ(SpanLog::Global().Snapshot().size(), 4u);
  EXPECT_EQ(GetCounter("telemetry.spans_dropped").value(), 6u);
  // The histogram still saw every span.
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* h =
      snapshot.FindHistogram("span.unit.bounded.nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 10u);
}

TEST_F(TelemetryTest, TraceRecorderRecordsPipeline) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t id = recorder.BeginPipeline("zlib", "column", "speed", 8);
  ASSERT_NE(id, 0u);

  CandidateTrace candidate;
  candidate.codec = "bzip2";
  candidate.ratio = 1.5;
  recorder.RecordCandidate(id, candidate);

  ChunkTrace chunk;
  chunk.input_bytes = 800;
  chunk.output_bytes = 500;
  recorder.RecordChunk(id, chunk);
  recorder.RecordChunk(id, chunk);
  recorder.EndPipeline(id, 1600, 1040, 40);

  const std::vector<PipelineTrace> pipelines = recorder.Snapshot();
  ASSERT_EQ(pipelines.size(), 1u);
  const PipelineTrace& p = pipelines[0];
  EXPECT_EQ(p.pipeline_id, id);
  EXPECT_EQ(p.codec, "zlib");
  EXPECT_TRUE(p.finished);
  EXPECT_EQ(p.input_bytes, 1600u);
  EXPECT_EQ(p.output_bytes, 1040u);
  EXPECT_EQ(p.header_bytes, 40u);
  ASSERT_EQ(p.candidates.size(), 1u);
  EXPECT_EQ(p.candidates[0].codec, "bzip2");
  ASSERT_EQ(p.chunks.size(), 2u);
  EXPECT_EQ(p.chunks[0].chunk_index, 0u);
  EXPECT_EQ(p.chunks[1].chunk_index, 1u);
}

TEST_F(TelemetryTest, TraceRecorderBoundsChunksPerPipeline) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_max_chunks_per_pipeline(3);
  const uint64_t id = recorder.BeginPipeline("zlib", "row", "speed", 8);
  for (int i = 0; i < 5; ++i) recorder.RecordChunk(id, ChunkTrace{});
  const std::vector<PipelineTrace> pipelines = recorder.Snapshot();
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines[0].chunks.size(), 3u);
  EXPECT_EQ(pipelines[0].dropped_chunks, 2u);
}

TEST_F(TelemetryTest, TraceRecorderDisabledReturnsZeroId) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.BeginPipeline("zlib", "row", "speed", 8), 0u);
  recorder.RecordChunk(0, ChunkTrace{});  // must be a harmless no-op
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(TelemetryTest, MetricsJsonRoundTrip) {
  GetCounter("test.export_counter").Add(123);
  GetHistogram("test.export_histogram").Observe(456);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  const std::string json = MetricsToJson(snapshot);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"test.export_counter\":123"), std::string::npos);
  EXPECT_NE(json.find("test.export_histogram"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":456"), std::string::npos);
}

TEST_F(TelemetryTest, MetricsCsvHasOneRowPerInstrument) {
  GetCounter("test.csv_counter").Add(9);
  GetHistogram("test.csv_histogram").Observe(2);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string csv = MetricsToCsv(snapshot);

  size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  // Header + one row per counter + one per histogram.
  EXPECT_EQ(lines, 1 + snapshot.counters.size() + snapshot.histograms.size());
  EXPECT_NE(csv.find("counter,test.csv_counter,9,9"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.csv_histogram,1,2,2,2,2"),
            std::string::npos);
}

TEST_F(TelemetryTest, TraceJsonAndCsvRoundTrip) {
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t id = recorder.BeginPipeline("bzip2", "row", "ratio", 4);
  ChunkTrace chunk;
  chunk.element_count = 1000;
  chunk.input_bytes = 4000;
  chunk.output_bytes = 2000;
  chunk.improvable = true;
  chunk.compressible_mask = 0x3;
  chunk.htc_fraction = 0.5;
  recorder.RecordChunk(id, chunk);
  recorder.EndPipeline(id, 4000, 2040, 40);

  const std::string json = TraceToJson(recorder.Snapshot());
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"codec\":\"bzip2\""), std::string::npos);
  EXPECT_NE(json.find("\"compressible_mask\":3"), std::string::npos);

  const std::string csv = TraceToCsv(recorder.Snapshot());
  EXPECT_NE(csv.find("pipeline_id,chunk_index"), std::string::npos);
  // pipeline_id,chunk_index,element_count,input_bytes,output_bytes,...
  const std::string row = std::to_string(id) + ",0,1000,4000,2000,1,0,3,0.5";
  EXPECT_NE(csv.find(row), std::string::npos) << csv;
}

TEST_F(TelemetryTest, CombinedReportIsValidJson) {
  GetCounter("test.report").Increment();
  {
    ScopedSpan span("unit.report");
  }
  const uint64_t id =
      TraceRecorder::Global().BeginPipeline("zlib", "row", "speed", 8);
  TraceRecorder::Global().EndPipeline(id, 1, 1, 1);

  const std::string report = TelemetryReportJson();
  EXPECT_TRUE(IsValidJson(report)) << report;
  EXPECT_NE(report.find("\"metrics\""), std::string::npos);
  EXPECT_NE(report.find("\"spans\""), std::string::npos);
  EXPECT_NE(report.find("\"pipelines\""), std::string::npos);
}

}  // namespace
}  // namespace isobar::telemetry
