#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "util/random.h"

namespace isobar {
namespace {

// Elements of width 4: columns 0-1 uniform noise, column 2 skewed,
// column 3 constant.
Bytes MixedColumns(size_t n, uint64_t seed) {
  Bytes data;
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>(rng.Next()));
    data.push_back(static_cast<uint8_t>(rng.NextBounded(4)));  // 4 values only
    data.push_back(0x7F);
  }
  return data;
}

TEST(AnalyzerTest, FlagsNoiseAndStructureColumns) {
  const Analyzer analyzer;
  auto result = analyzer.Analyze(MixedColumns(100000, 1), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0b1100ull);
  EXPECT_EQ(result->compressible_columns(), 2);
  EXPECT_DOUBLE_EQ(result->htc_byte_fraction(), 0.5);
  EXPECT_TRUE(result->improvable());
}

TEST(AnalyzerTest, AllConstantIsUndetermined) {
  const Analyzer analyzer;
  Bytes data(8 * 1000, 0x11);
  auto result = analyzer.Analyze(data, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0xFFull);
  EXPECT_FALSE(result->improvable());
  EXPECT_DOUBLE_EQ(result->htc_byte_fraction(), 0.0);
}

TEST(AnalyzerTest, AllRandomIsUndetermined) {
  const Analyzer analyzer;
  Bytes data;
  Xoshiro256 rng(2);
  for (int i = 0; i < 8 * 100000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.Next()));
  }
  auto result = analyzer.Analyze(data, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0ull);
  EXPECT_FALSE(result->improvable());
  EXPECT_DOUBLE_EQ(result->htc_byte_fraction(), 1.0);
}

TEST(AnalyzerTest, TauExtremes) {
  const Bytes data = MixedColumns(100000, 3);
  // τ = 256: tolerance is N, nothing can exceed it except... everything is
  // ≤ N, so all columns are incompressible.
  Analyzer always_noise(AnalyzerOptions{.tau = 256.0});
  auto result = always_noise.Analyze(data, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0ull);

  // τ = 1: tolerance is N/256, which uniform columns hover above by random
  // fluctuation; every column is declared compressible.
  Analyzer always_signal(AnalyzerOptions{.tau = 1.0});
  result = always_signal.Analyze(data, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0b1111ull);
}

TEST(AnalyzerTest, PaperTauIsStableInRecommendedRange) {
  // §II.A: results are stable for τ in [1.4, 1.5].
  const Bytes data = MixedColumns(375000, 4);
  auto low = Analyzer(AnalyzerOptions{.tau = 1.4}).Analyze(data, 4);
  auto mid = Analyzer(AnalyzerOptions{.tau = 1.42}).Analyze(data, 4);
  auto high = Analyzer(AnalyzerOptions{.tau = 1.5}).Analyze(data, 4);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(mid.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(low->compressible_mask, mid->compressible_mask);
  EXPECT_EQ(mid->compressible_mask, high->compressible_mask);
}

TEST(AnalyzerTest, InvalidTauRejected) {
  const Bytes data(32, 0);
  EXPECT_FALSE(Analyzer(AnalyzerOptions{.tau = 0.5}).Analyze(data, 8).ok());
  EXPECT_FALSE(Analyzer(AnalyzerOptions{.tau = 300.0}).Analyze(data, 8).ok());
}

TEST(AnalyzerTest, GeometryValidation) {
  const Analyzer analyzer;
  EXPECT_FALSE(analyzer.Analyze(Bytes(16, 0), 0).ok());
  EXPECT_FALSE(analyzer.Analyze(Bytes(16, 0), 65).ok());
  EXPECT_FALSE(analyzer.Analyze(Bytes(15, 0), 8).ok());
  EXPECT_FALSE(analyzer.Analyze({}, 8).ok());
}

TEST(AnalyzerTest, ClassifyMatchesAnalyzeOnStreamedHistograms) {
  const Bytes data = MixedColumns(50000, 5);
  const Analyzer analyzer;
  auto direct = analyzer.Analyze(data, 4);
  ASSERT_TRUE(direct.ok());

  ColumnHistogramSet streamed(4);
  const size_t half = data.size() / 2 / 4 * 4;
  ASSERT_TRUE(streamed.Update(ByteSpan(data).subspan(0, half)).ok());
  ASSERT_TRUE(streamed.Update(ByteSpan(data).subspan(half)).ok());
  auto via_classify = analyzer.Classify(streamed);
  ASSERT_TRUE(via_classify.ok());
  EXPECT_EQ(via_classify->compressible_mask, direct->compressible_mask);
  EXPECT_EQ(via_classify->element_count, direct->element_count);
}

TEST(AnalyzerTest, ColumnEntropyDiagnosticsPopulated) {
  const Analyzer analyzer;
  auto result = analyzer.Analyze(MixedColumns(50000, 6), 4);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->column_entropy.size(), 4u);
  EXPECT_GT(result->column_entropy[0], 7.5);   // noise
  EXPECT_LT(result->column_entropy[2], 2.5);   // 4-value column
  EXPECT_DOUBLE_EQ(result->column_entropy[3], 0.0);  // constant
}

TEST(AnalyzerTest, SmallChunkDegeneratesToUndetermined) {
  // With N < 256/τ the tolerance falls below one occurrence, so every
  // column trivially exceeds it: tiny inputs are never partitioned.
  const Analyzer analyzer;
  Bytes data;
  Xoshiro256 rng(7);
  for (int i = 0; i < 8 * 100; ++i) data.push_back(static_cast<uint8_t>(rng.Next()));
  auto result = analyzer.Analyze(data, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0xFFull);
  EXPECT_FALSE(result->improvable());
}

TEST(AnalyzerTest, WideElementsSupported) {
  // ω = 16: noise in the low 8 bytes, structure in the high 8.
  // Enough elements that uniform columns sit many sigma below the
  // tolerance (at N=100000 the margin is ~8 sigma).
  Bytes data;
  Xoshiro256 rng(8);
  for (int i = 0; i < 100000; ++i) {
    for (int b = 0; b < 8; ++b) data.push_back(static_cast<uint8_t>(rng.Next()));
    for (int b = 0; b < 8; ++b) data.push_back(static_cast<uint8_t>(b));
  }
  const Analyzer analyzer;
  auto result = analyzer.Analyze(data, 16);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->compressible_mask, 0xFF00ull);
  EXPECT_TRUE(result->improvable());
  EXPECT_DOUBLE_EQ(result->htc_byte_fraction(), 0.5);
}

}  // namespace
}  // namespace isobar
