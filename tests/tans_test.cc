#include "compressors/tans.h"

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <string>

#include "util/random.h"

namespace isobar::tans {
namespace {

NormalizedHistogram NormalizeOrDie(const uint64_t* counts, size_t alphabet,
                                   uint32_t max_log = kMaxTableLog) {
  NormalizedHistogram hist;
  Status st = Normalize(counts, alphabet, max_log, &hist);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return hist;
}

uint32_t SumCounts(const NormalizedHistogram& hist) {
  uint32_t sum = 0;
  for (uint32_t s = 0; s < hist.alphabet_size; ++s) sum += hist.counts[s];
  return sum;
}

// ---------------------------------------------------------------------------
// Normalization edge cases.

TEST(TansNormalizeTest, SingleSymbolGetsWholeTable) {
  std::array<uint64_t, 8> counts{};
  counts[5] = 12345;
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 8);
  EXPECT_EQ(hist.table_log, kMinTableLog);
  EXPECT_EQ(hist.counts[5], 1u << kMinTableLog);
  EXPECT_EQ(SumCounts(hist), 1u << hist.table_log);
}

TEST(TansNormalizeTest, SkewedHistogramKeepsRareSymbols) {
  std::array<uint64_t, 4> counts = {1000000, 1, 1, 1};
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 4);
  EXPECT_EQ(SumCounts(hist), 1u << hist.table_log);
  // Every present symbol keeps at least one state, no matter how rare.
  for (int s = 1; s < 4; ++s) EXPECT_GE(hist.counts[s], 1u);
  EXPECT_GT(hist.counts[0], hist.counts[1]);
}

TEST(TansNormalizeTest, FullAlphabetUniform) {
  std::array<uint64_t, 256> counts;
  counts.fill(37);
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 256);
  EXPECT_EQ(SumCounts(hist), 1u << hist.table_log);
  // 256 symbols need at least 256 states.
  EXPECT_GE(hist.table_log, 8u);
  const uint16_t share = hist.counts[0];
  for (int s = 0; s < 256; ++s) EXPECT_EQ(hist.counts[s], share);
}

TEST(TansNormalizeTest, TinyTotalTakesMinimumTable) {
  // total == 2 used to wrap bit_width(total - 1) - 2 below zero and clamp
  // the table log to max_log, inflating headers for 2-symbol inputs.
  std::array<uint64_t, 2> counts = {1, 1};
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 2);
  EXPECT_EQ(hist.table_log, kMinTableLog);
  EXPECT_EQ(SumCounts(hist), 1u << hist.table_log);
}

TEST(TansNormalizeTest, EmptyHistogramFails) {
  std::array<uint64_t, 16> counts{};
  NormalizedHistogram hist;
  EXPECT_FALSE(Normalize(counts.data(), 16, kMaxTableLog, &hist).ok());
}

TEST(TansNormalizeTest, RespectsMaxTableLog) {
  std::array<uint64_t, 8> counts = {100, 200, 300, 400, 10, 20, 30, 40};
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 8, 6);
  EXPECT_LE(hist.table_log, 6u);
  EXPECT_EQ(SumCounts(hist), 1u << hist.table_log);
}

// ---------------------------------------------------------------------------
// Table header serialization.

TEST(TansHistogramTest, SerializeParseRoundTrip) {
  std::array<uint64_t, 40> counts{};
  counts[0] = 500;
  counts[3] = 100;
  counts[17] = 7;  // zero runs on both sides
  counts[39] = 90;
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 40);

  Bytes serialized;
  AppendHistogram(hist, &serialized);
  NormalizedHistogram parsed;
  size_t offset = 0;
  Status st = ParseHistogram(serialized, &offset, &parsed);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(offset, serialized.size());
  EXPECT_EQ(parsed.table_log, hist.table_log);
  EXPECT_EQ(parsed.alphabet_size, hist.alphabet_size);
  EXPECT_EQ(parsed.counts, hist.counts);
}

TEST(TansHistogramTest, CorruptHeadersFailClosed) {
  std::array<uint64_t, 8> counts = {10, 20, 30, 40, 50, 60, 70, 80};
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 8);
  Bytes good;
  AppendHistogram(hist, &good);

  NormalizedHistogram parsed;
  size_t offset;

  // Truncations at every prefix length must fail, never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes truncated(good.begin(), good.begin() + cut);
    offset = 0;
    EXPECT_FALSE(ParseHistogram(truncated, &offset, &parsed).ok())
        << "cut=" << cut;
  }

  // Table log out of range.
  Bytes bad = good;
  bad[0] = kMaxTableLog + 1;
  offset = 0;
  EXPECT_FALSE(ParseHistogram(bad, &offset, &parsed).ok());
  bad[0] = kMinTableLog - 1;
  offset = 0;
  EXPECT_FALSE(ParseHistogram(bad, &offset, &parsed).ok());

  // Counts that no longer sum to the table size.
  bad = good;
  bad[2] = static_cast<uint8_t>(bad[2] ^ 1);
  offset = 0;
  EXPECT_FALSE(ParseHistogram(bad, &offset, &parsed).ok());
}

// ---------------------------------------------------------------------------
// Encode/decode round trips.

Bytes MakeSymbols(size_t n, uint64_t seed, int alphabet) {
  Bytes out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) {
    // Skewed distribution: low symbols are much more common.
    const uint64_t r = rng.Next();
    b = static_cast<uint8_t>((r % alphabet) * (r % 3 == 0 ? 1 : 0) +
                             (r % 5) * (r % 3 != 0 ? 1 : 0));
  }
  return out;
}

void RoundTrip(const Bytes& symbols, uint32_t num_states) {
  std::array<uint64_t, 256> counts{};
  for (uint8_t s : symbols) ++counts[s];
  size_t alphabet = 0;
  for (size_t s = 0; s < 256; ++s) {
    if (counts[s] != 0) alphabet = s + 1;
  }
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), alphabet);

  EncodeTable enc;
  ASSERT_TRUE(enc.Init(hist).ok());
  DecodeTable dec;
  ASSERT_TRUE(dec.Init(hist).ok());

  Bytes stream;
  ASSERT_TRUE(EncodeInterleaved(symbols.data(), symbols.size(), enc,
                                num_states, &stream)
                  .ok());
  Bytes decoded(symbols.size());
  Status st = DecodeInterleaved(stream, dec, num_states, symbols.size(),
                                decoded.data());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded, symbols) << "num_states=" << num_states;
}

TEST(TansStreamTest, RoundTripAllInterleaveFactors) {
  const Bytes symbols = MakeSymbols(50000, 99, 41);
  for (uint32_t n = 1; n <= 4; ++n) RoundTrip(symbols, n);
}

TEST(TansStreamTest, RoundTripShortInputs) {
  for (size_t len : {1u, 2u, 3u, 5u, 7u, 8u, 9u, 63u}) {
    RoundTrip(MakeSymbols(len, len, 17), 4);
    RoundTrip(MakeSymbols(len, len, 17), 2);
  }
}

TEST(TansStreamTest, RoundTripSingleSymbolInput) {
  RoundTrip(Bytes(1000, 42), 4);
}

TEST(TansStreamTest, InterleavedParityWithSingleStream) {
  // The same table must decode its own 1-way and 4-way streams to the
  // same symbols: interleaving changes the bit schedule, not the message.
  const Bytes symbols = MakeSymbols(10000, 7, 29);
  std::array<uint64_t, 256> counts{};
  for (uint8_t s : symbols) ++counts[s];
  size_t alphabet = 0;
  for (size_t s = 0; s < 256; ++s) {
    if (counts[s] != 0) alphabet = s + 1;
  }
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), alphabet);
  EncodeTable enc;
  ASSERT_TRUE(enc.Init(hist).ok());
  DecodeTable dec;
  ASSERT_TRUE(dec.Init(hist).ok());

  Bytes single;
  Bytes interleaved;
  ASSERT_TRUE(
      EncodeInterleaved(symbols.data(), symbols.size(), enc, 1, &single)
          .ok());
  ASSERT_TRUE(EncodeInterleaved(symbols.data(), symbols.size(), enc, 4,
                                &interleaved)
                  .ok());

  Bytes from_single(symbols.size());
  Bytes from_interleaved(symbols.size());
  ASSERT_TRUE(DecodeInterleaved(single, dec, 1, symbols.size(),
                                from_single.data())
                  .ok());
  ASSERT_TRUE(DecodeInterleaved(interleaved, dec, 4, symbols.size(),
                                from_interleaved.data())
                  .ok());
  EXPECT_EQ(from_single, symbols);
  EXPECT_EQ(from_interleaved, symbols);
  // The interleaved stream pays only the extra state flushes.
  EXPECT_NEAR(static_cast<double>(single.size()),
              static_cast<double>(interleaved.size()), 8.0);
}

TEST(TansStreamTest, EmptyInputProducesEmptyStream) {
  std::array<uint64_t, 4> counts = {5, 3, 2, 1};
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), 4);
  EncodeTable enc;
  ASSERT_TRUE(enc.Init(hist).ok());
  DecodeTable dec;
  ASSERT_TRUE(dec.Init(hist).ok());

  Bytes stream;
  ASSERT_TRUE(EncodeInterleaved(nullptr, 0, enc, 2, &stream).ok());
  EXPECT_TRUE(stream.empty());
  EXPECT_TRUE(DecodeInterleaved(stream, dec, 2, 0, nullptr).ok());
  // Decoding zero symbols from a non-empty stream is trailing garbage.
  Bytes junk = {0x80};
  EXPECT_FALSE(DecodeInterleaved(junk, dec, 2, 0, nullptr).ok());
}

TEST(TansStreamTest, TruncatedStreamsFailClosed) {
  const Bytes symbols = MakeSymbols(5000, 3, 23);
  std::array<uint64_t, 256> counts{};
  for (uint8_t s : symbols) ++counts[s];
  size_t alphabet = 0;
  for (size_t s = 0; s < 256; ++s) {
    if (counts[s] != 0) alphabet = s + 1;
  }
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), alphabet);
  EncodeTable enc;
  ASSERT_TRUE(enc.Init(hist).ok());
  DecodeTable dec;
  ASSERT_TRUE(dec.Init(hist).ok());

  Bytes stream;
  ASSERT_TRUE(
      EncodeInterleaved(symbols.data(), symbols.size(), enc, 2, &stream)
          .ok());
  Bytes decoded(symbols.size());
  // An empty stream and every severe truncation must fail; mild
  // truncations may decode garbage symbols but must never succeed in
  // producing the requested count from insufficient bits... they either
  // fail or the overflow flag trips. All must return non-OK.
  EXPECT_FALSE(
      DecodeInterleaved(ByteSpan(), dec, 2, symbols.size(), decoded.data())
          .ok());
  for (size_t keep : {size_t{1}, stream.size() / 4, stream.size() / 2,
                      stream.size() - 1}) {
    Bytes truncated(stream.begin(), stream.begin() + keep);
    if (!truncated.empty() && truncated.back() == 0) {
      truncated.back() = 1;  // keep a sentinel so Init succeeds
    }
    EXPECT_FALSE(DecodeInterleaved(truncated, dec, 2, symbols.size(),
                                   decoded.data())
                     .ok())
        << "keep=" << keep;
  }
}

TEST(TansStreamTest, ExtraLeadingBytesFailClosed) {
  // Bytes prepended to an otherwise valid stream never trip the overflow
  // flag — the reader simply stops before reaching them — so only the
  // full-consumption check can reject this well-formed corruption.
  const Bytes symbols = MakeSymbols(5000, 11, 23);
  std::array<uint64_t, 256> counts{};
  for (uint8_t s : symbols) ++counts[s];
  size_t alphabet = 0;
  for (size_t s = 0; s < 256; ++s) {
    if (counts[s] != 0) alphabet = s + 1;
  }
  const NormalizedHistogram hist = NormalizeOrDie(counts.data(), alphabet);
  EncodeTable enc;
  ASSERT_TRUE(enc.Init(hist).ok());
  DecodeTable dec;
  ASSERT_TRUE(dec.Init(hist).ok());

  Bytes stream;
  ASSERT_TRUE(
      EncodeInterleaved(symbols.data(), symbols.size(), enc, 2, &stream)
          .ok());
  Bytes decoded(symbols.size());
  for (size_t extra : {size_t{1}, size_t{7}, size_t{64}}) {
    Bytes padded(extra, 0xAB);
    padded.insert(padded.end(), stream.begin(), stream.end());
    EXPECT_FALSE(DecodeInterleaved(padded, dec, 2, symbols.size(),
                                   decoded.data())
                     .ok())
        << "extra=" << extra;
  }
}

}  // namespace
}  // namespace isobar::tans
