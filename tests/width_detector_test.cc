#include <gtest/gtest.h>

#include "datagen/records.h"
#include "datagen/registry.h"
#include "stats/width_detector.h"
#include "util/random.h"

namespace isobar {
namespace {

TEST(WidthDetectorTest, RecoversDoubleWidthFromHardProfiles) {
  for (const char* name : {"gts_phi_l", "flash_gamc", "msg_sweep3d"}) {
    auto spec = FindDatasetSpec(name);
    ASSERT_TRUE(spec.ok());
    auto dataset = GenerateDataset(**spec, 100000);
    ASSERT_TRUE(dataset.ok());
    auto detection = DetectElementWidth(dataset->bytes());
    ASSERT_TRUE(detection.ok()) << name;
    EXPECT_TRUE(detection->confident) << name;
    EXPECT_EQ(detection->width, 8u) << name;
  }
}

TEST(WidthDetectorTest, RecoversFloatWidth) {
  auto spec = FindDatasetSpec("s3d_vmag");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 100000);
  ASSERT_TRUE(dataset.ok());
  auto detection = DetectElementWidth(dataset->bytes(), 8);
  ASSERT_TRUE(detection.ok());
  EXPECT_TRUE(detection->confident);
  EXPECT_EQ(detection->width, 4u);
}

TEST(WidthDetectorTest, RecoversRecordWidth) {
  // 12-byte records (3 float lanes with distinct structure) have no
  // shorter period.
  RecordSpec spec;
  spec.lane_type = ElementType::kFloat32;
  GeneratorParams noisy;
  noisy.noise_bytes = 2;
  GeneratorParams clean;
  clean.noise_bytes = 0;
  GeneratorParams half;
  half.noise_bytes = 1;
  spec.lanes = {noisy, clean, half};
  spec.seed = 7;
  auto records = GenerateRecords(spec, 100000);
  ASSERT_TRUE(records.ok());
  auto detection = DetectElementWidth(records->bytes(), 16);
  ASSERT_TRUE(detection.ok());
  EXPECT_TRUE(detection->confident);
  EXPECT_EQ(detection->width, 12u);
}

TEST(WidthDetectorTest, RandomDataIsNotConfident) {
  Bytes data;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1 << 18; ++i) data.push_back(static_cast<uint8_t>(rng.Next()));
  auto detection = DetectElementWidth(data);
  ASSERT_TRUE(detection.ok());
  EXPECT_FALSE(detection->confident);
  EXPECT_EQ(detection->width, 1u);
}

TEST(WidthDetectorTest, ConstantDataIsNotConfident) {
  Bytes data(1 << 16, 0x42);
  auto detection = DetectElementWidth(data);
  ASSERT_TRUE(detection.ok());
  EXPECT_FALSE(detection->confident);
  EXPECT_EQ(detection->width, 1u);
}

TEST(WidthDetectorTest, CandidatesRespectDivisibility) {
  // 8 * 12345 bytes: width 16 does not divide the input and must be
  // absent from the candidate list.
  auto spec = FindDatasetSpec("gts_phi_l");
  ASSERT_TRUE(spec.ok());
  auto dataset = GenerateDataset(**spec, 12345);
  ASSERT_TRUE(dataset.ok());
  auto detection = DetectElementWidth(dataset->bytes());
  ASSERT_TRUE(detection.ok());
  for (const WidthCandidate& candidate : detection->candidates) {
    EXPECT_EQ(dataset->data.size() % candidate.width, 0u);
  }
  EXPECT_EQ(detection->width, 8u);
}

TEST(WidthDetectorTest, InputValidation) {
  Bytes tiny(100, 0);
  EXPECT_FALSE(DetectElementWidth(tiny).ok());
  Bytes enough(1 << 16, 0);
  EXPECT_FALSE(DetectElementWidth(enough, 0).ok());
  EXPECT_FALSE(DetectElementWidth(enough, 65).ok());
}

}  // namespace
}  // namespace isobar
