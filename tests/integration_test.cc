// End-to-end scenarios crossing module boundaries: synthetic data through
// analysis, EUPA, the full pipeline, alternative linearizations, and the
// FPC / fpzip baselines — the code paths behind the paper's evaluation.
#include <gtest/gtest.h>

#include "compressors/registry.h"
#include "core/isobar.h"
#include "datagen/registry.h"
#include "datagen/time_series.h"
#include "fpc/fpc_codec.h"
#include "fpzip/fpzip_codec.h"
#include "linearize/hilbert.h"
#include "linearize/permutation.h"
#include "stats/bit_frequency.h"

namespace isobar {
namespace {

Result<Dataset> Generate(const char* name, uint64_t elements) {
  ISOBAR_ASSIGN_OR_RETURN(const DatasetSpec* spec, FindDatasetSpec(name));
  return GenerateDataset(*spec, elements);
}

double StandardRatio(CodecId id, ByteSpan data) {
  auto codec = GetCodec(id);
  EXPECT_TRUE(codec.ok());
  Bytes out;
  EXPECT_TRUE((*codec)->Compress(data, &out).ok());
  return static_cast<double>(data.size()) / static_cast<double>(out.size());
}

// Fig. 1: hard-to-compress profiles show noise-like bit positions, easy
// ones do not.
TEST(IntegrationTest, BitFrequencyProfilesSeparateHardFromEasy) {
  auto hard = Generate("gts_chkp_zeon", 100000);
  auto easy = Generate("msg_sppm", 100000);
  ASSERT_TRUE(hard.ok());
  ASSERT_TRUE(easy.ok());

  auto hard_profile = ComputeBitFrequency(hard->bytes(), 8);
  auto easy_profile = ComputeBitFrequency(easy->bytes(), 8);
  ASSERT_TRUE(hard_profile.ok());
  ASSERT_TRUE(easy_profile.ok());

  // Count bit positions that are essentially coin flips (< 0.55).
  auto noisy_positions = [](const BitFrequencyProfile& p) {
    int count = 0;
    for (double prob : p.probability) {
      if (prob < 0.55) ++count;
    }
    return count;
  };
  EXPECT_GE(noisy_positions(*hard_profile), 40);  // ~48 noise bits
  EXPECT_LE(noisy_positions(*easy_profile), 8);
}

// Table V shape: on every improvable profile, ISOBAR+zlib must beat
// standalone zlib's ratio; on every non-improvable one, it must fall back
// to within container overhead of the standard result.
TEST(IntegrationTest, RatioImprovementShapeAcrossAllProfiles) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    auto dataset = GenerateDataset(spec, 250000);
    ASSERT_TRUE(dataset.ok()) << spec.name;

    CompressOptions options;
    options.eupa.forced_codec = CodecId::kZlib;
    options.eupa.forced_linearization = Linearization::kRow;
    options.chunk_elements = 250000;
    const IsobarCompressor compressor(options);
    CompressionStats stats;
    auto compressed =
        compressor.Compress(dataset->bytes(), dataset->width(), &stats);
    ASSERT_TRUE(compressed.ok()) << spec.name;

    const double standard = StandardRatio(CodecId::kZlib, dataset->bytes());
    if (spec.paper_verdict.improvable) {
      EXPECT_GT(stats.ratio(), standard) << spec.name;
    } else {
      // Undetermined: same bytes to the solver, only headers added.
      EXPECT_GT(stats.ratio(), standard * 0.99) << spec.name;
    }
  }
}

// §III.G / Figs. 9-10: the improvement survives Hilbert and random
// element reordering.
TEST(IntegrationTest, ImprovementRobustToLinearization) {
  auto spec = FindDatasetSpec("flash_gamc");
  ASSERT_TRUE(spec.ok());
  // 65536 = 256 x 256 grid for the Hilbert walk.
  auto dataset = GenerateDataset(**spec, 65536);
  ASSERT_TRUE(dataset.ok());

  const uint32_t dims[] = {256, 256};
  Bytes hilbert;
  ASSERT_TRUE(HilbertReorder(dataset->bytes(), 8, dims, &hilbert).ok());
  Bytes random;
  ASSERT_TRUE(ApplyPermutation(dataset->bytes(), 8,
                               RandomPermutation(65536, 9), &random).ok());

  CompressOptions options;
  options.eupa.forced_codec = CodecId::kZlib;
  options.eupa.forced_linearization = Linearization::kRow;
  const IsobarCompressor compressor(options);

  double delta_cr[3];
  const ByteSpan variants[] = {dataset->bytes(), ByteSpan(hilbert),
                               ByteSpan(random)};
  for (int i = 0; i < 3; ++i) {
    CompressionStats stats;
    auto compressed = compressor.Compress(variants[i], 8, &stats);
    ASSERT_TRUE(compressed.ok());
    EXPECT_TRUE(stats.improvable) << "variant " << i;
    const double standard = StandardRatio(CodecId::kZlib, variants[i]);
    delta_cr[i] = (stats.ratio() / standard - 1.0) * 100.0;
    EXPECT_GT(delta_cr[i], 5.0) << "variant " << i;
  }
  // Improvement within a few points of each other across orderings.
  EXPECT_NEAR(delta_cr[1], delta_cr[0], 10.0);
  EXPECT_NEAR(delta_cr[2], delta_cr[0], 10.0);
}

// §III.F: verdict, EUPA choice, and ratio are stable across time steps.
TEST(IntegrationTest, ConsistencyAcrossSimulationTimeSteps) {
  auto spec = FindDatasetSpec("gts_phi_l");
  ASSERT_TRUE(spec.ok());
  TimeSeriesGenerator series(**spec, 150000);

  CompressOptions options;
  options.eupa.sample_elements = 16384;
  // The default kSpeed preference picks within a wall-clock throughput
  // band, so a load spike during one step can flip the decision and fail
  // the cross-step stability check this test is about. kRatio is
  // bit-deterministic — but zlib and bzip2 are ratio-near-tied on this
  // dataset family, so per-seed noise would still flip the winner. Keep
  // candidates whose ratio ordering is decisively separated: the claim
  // under test is stability across time steps, not tie-breaking.
  options.eupa.preference = Preference::kRatio;
  options.eupa.candidate_codecs = {CodecId::kZlib, CodecId::kRle,
                                   CodecId::kHuffman};
  const IsobarCompressor compressor(options);

  double first_ratio = 0.0;
  CodecId first_codec{};
  Linearization first_lin{};
  for (uint64_t t = 0; t < 6; ++t) {
    auto step = series.Step(t);
    ASSERT_TRUE(step.ok());
    CompressionStats stats;
    auto compressed = compressor.Compress(step->bytes(), 8, &stats);
    ASSERT_TRUE(compressed.ok());
    EXPECT_TRUE(stats.improvable) << "step " << t;
    if (t == 0) {
      first_ratio = stats.ratio();
      first_codec = stats.decision.codec;
      first_lin = stats.decision.linearization;
    } else {
      EXPECT_EQ(stats.decision.codec, first_codec) << "step " << t;
      EXPECT_EQ(stats.decision.linearization, first_lin) << "step " << t;
      EXPECT_NEAR(stats.ratio(), first_ratio, first_ratio * 0.05)
          << "step " << t;
    }
  }
}

// Table X shape: all three compressors round-trip the same data; ISOBAR's
// ratio is competitive on the hard-to-compress profiles.
TEST(IntegrationTest, BaselinesAgreeOnContentAndIsobarIsCompetitive) {
  auto dataset = Generate("gts_chkp_zion", 250000);
  ASSERT_TRUE(dataset.ok());

  // ISOBAR.
  CompressOptions options;
  const IsobarCompressor compressor(options);
  CompressionStats stats;
  auto isobar_out = compressor.Compress(dataset->bytes(), 8, &stats);
  ASSERT_TRUE(isobar_out.ok());
  auto isobar_restored = IsobarCompressor::Decompress(*isobar_out);
  ASSERT_TRUE(isobar_restored.ok());
  EXPECT_EQ(*isobar_restored, dataset->data);

  // FPC.
  const FpcCodec fpc;
  Bytes fpc_out, fpc_restored;
  ASSERT_TRUE(fpc.Compress(dataset->bytes(), &fpc_out).ok());
  ASSERT_TRUE(
      fpc.Decompress(fpc_out, dataset->data.size(), &fpc_restored).ok());
  EXPECT_EQ(fpc_restored, dataset->data);

  // fpzip.
  const FpzipCodec fpzip(8);
  Bytes fpzip_out, fpzip_restored;
  ASSERT_TRUE(fpzip.Compress(dataset->bytes(), &fpzip_out).ok());
  ASSERT_TRUE(
      fpzip.Decompress(fpzip_out, dataset->data.size(), &fpzip_restored).ok());
  EXPECT_EQ(fpzip_restored, dataset->data);

  const double fpc_ratio = static_cast<double>(dataset->data.size()) /
                           static_cast<double>(fpc_out.size());
  EXPECT_GT(stats.ratio(), 1.0);
  EXPECT_GT(fpc_ratio, 1.0);
  // Table X: ISOBAR's ratio beats FPC on the GTS checkpoint datasets.
  EXPECT_GT(stats.ratio(), fpc_ratio * 0.95);
}

// The paper's workflow works end-to-end when a user overrides everything
// explicitly (§II.C "complete flexibility").
TEST(IntegrationTest, ExplicitPipelineOverrides) {
  auto dataset = Generate("xgc_iphase", 150000);
  ASSERT_TRUE(dataset.ok());
  for (CodecId codec : {CodecId::kZlib, CodecId::kBzip2, CodecId::kLzss}) {
    for (Linearization lin :
         {Linearization::kRow, Linearization::kColumn}) {
      CompressOptions options;
      options.eupa.forced_codec = codec;
      options.eupa.forced_linearization = lin;
      const IsobarCompressor compressor(options);
      auto compressed = compressor.Compress(dataset->bytes(), 8);
      ASSERT_TRUE(compressed.ok())
          << CodecIdToString(codec) << "/" << LinearizationToString(lin);
      auto restored = IsobarCompressor::Decompress(*compressed);
      ASSERT_TRUE(restored.ok());
      EXPECT_EQ(*restored, dataset->data);
    }
  }
}

// Decompression of the speed-preference container touches only the
// compressed signal bytes; the noise moves with memcpy-like scatter. The
// output must still be exact for both preferences.
TEST(IntegrationTest, BothPreferencesProduceIdenticalPlaintext) {
  auto dataset = Generate("s3d_temp", 300000);
  ASSERT_TRUE(dataset.ok());
  for (Preference pref : {Preference::kSpeed, Preference::kRatio}) {
    CompressOptions options;
    options.eupa.preference = pref;
    const IsobarCompressor compressor(options);
    auto compressed = compressor.Compress(dataset->bytes(), 4);
    ASSERT_TRUE(compressed.ok());
    auto restored = IsobarCompressor::Decompress(*compressed);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, dataset->data);
  }
}

// The estimator gate only skips trials whose outcome could not matter,
// so the container a ratio-preference pipeline produces must be
// byte-identical with the gate on (default margin) and off (exhaustive
// trials) — across structured, noisy, and mixed profiles.
TEST(IntegrationTest, ContainerBytesIdenticalWithAndWithoutEupaPruning) {
  for (const char* profile : {"msg_sppm", "gts_chkp_zeon", "gts_phi_l"}) {
    auto dataset = Generate(profile, 200000);
    ASSERT_TRUE(dataset.ok()) << profile;
    Bytes gated, exhaustive;
    for (double margin : {0.25, 0.0}) {
      CompressOptions options;
      options.eupa.preference = Preference::kRatio;
      options.eupa.prune_margin = margin;
      options.num_threads = 1;
      const IsobarCompressor compressor(options);
      auto compressed =
          compressor.Compress(dataset->bytes(), dataset->width());
      ASSERT_TRUE(compressed.ok()) << profile;
      (margin > 0.0 ? gated : exhaustive) = std::move(*compressed);
    }
    EXPECT_EQ(gated, exhaustive) << profile;
    auto restored = IsobarCompressor::Decompress(gated);
    ASSERT_TRUE(restored.ok()) << profile;
    EXPECT_EQ(*restored, dataset->data) << profile;
  }
}

}  // namespace
}  // namespace isobar
